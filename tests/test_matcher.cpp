// Unit tests for subgraph-to-instruction pattern matching.
#include <gtest/gtest.h>

#include "isa/builtin.hpp"
#include "isa/isa_parse.hpp"
#include "synth/matcher.hpp"

namespace hcg::synth {
namespace {

using isa::VectorIsa;

const VectorIsa& neon() { return isa::builtin("neon"); }

const isa::Instruction& find_ins(const VectorIsa& table,
                                 const std::string& name) {
  for (const isa::Instruction& ins : table.instructions) {
    if (ins.name == name) return ins;
  }
  throw std::runtime_error("no instruction " + name);
}

/// A little harness graph:
///   externals x0, x1, x2 (i32)
///   n0 = Mul(x0, x1)
///   n1 = Add(n0, x2)        -- the vmla shape
struct MulAddGraph {
  Dataflow g{16, 32};
  int x0, x1, x2, mul, add;

  MulAddGraph() {
    x0 = g.add_external({0, 0, DataType::kInt32});
    x1 = g.add_external({1, 0, DataType::kInt32});
    x2 = g.add_external({2, 0, DataType::kInt32});
    mul = g.add_node({BatchOp::kMul,
                      {ValueRef::external(x0), ValueRef::external(x1)},
                      DataType::kInt32, 0});
    add = g.add_node({BatchOp::kAdd,
                      {ValueRef::node(mul), ValueRef::external(x2)},
                      DataType::kInt32, 1});
    g.mark_output(add);
  }
};

TEST(Matcher, SingleOpMatch) {
  MulAddGraph h;
  auto binding = match_instruction(h.g, {h.mul}, find_ins(neon(), "vmulq_s32"));
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->inputs.at(1), ValueRef::external(h.x0));
  EXPECT_EQ(binding->inputs.at(2), ValueRef::external(h.x1));
  EXPECT_FALSE(binding->has_imm);
  EXPECT_FALSE(binding->has_scalar);
}

TEST(Matcher, WrongOpFails) {
  MulAddGraph h;
  EXPECT_FALSE(
      match_instruction(h.g, {h.mul}, find_ins(neon(), "vaddq_s32")));
}

TEST(Matcher, WrongTypeFails) {
  MulAddGraph h;
  EXPECT_FALSE(
      match_instruction(h.g, {h.mul}, find_ins(neon(), "vmulq_s16")));
}

TEST(Matcher, MulAddFusesToVmla) {
  MulAddGraph h;
  auto binding =
      match_instruction(h.g, {h.mul, h.add}, find_ins(neon(), "vmlaq_s32"));
  ASSERT_TRUE(binding.has_value());
  // Pattern Add(Mul(I1,I2),I3): I1/I2 from the Mul, I3 is the addend.
  EXPECT_EQ(binding->inputs.at(1), ValueRef::external(h.x0));
  EXPECT_EQ(binding->inputs.at(2), ValueRef::external(h.x1));
  EXPECT_EQ(binding->inputs.at(3), ValueRef::external(h.x2));
}

TEST(Matcher, CommutativeSwapMatchesAddWithMulOnRight) {
  // n1 = Add(x2, n0) — Mul as the *second* operand needs the swap.
  Dataflow g(16, 32);
  const int x0 = g.add_external({0, 0, DataType::kInt32});
  const int x1 = g.add_external({1, 0, DataType::kInt32});
  const int x2 = g.add_external({2, 0, DataType::kInt32});
  const int mul = g.add_node({BatchOp::kMul,
                              {ValueRef::external(x0), ValueRef::external(x1)},
                              DataType::kInt32, 0});
  const int add = g.add_node({BatchOp::kAdd,
                              {ValueRef::external(x2), ValueRef::node(mul)},
                              DataType::kInt32, 1});
  g.mark_output(add);
  auto binding = match_instruction(g, {mul, add}, find_ins(neon(), "vmlaq_s32"));
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->inputs.at(3), ValueRef::external(x2));
}

TEST(Matcher, NonCommutativeOrderIsRespected) {
  // Sub(I3, Mul(I1,I2)) = vmls; Sub(Mul(I1,I2), I3) must NOT match it.
  Dataflow g(16, 32);
  const int x0 = g.add_external({0, 0, DataType::kInt32});
  const int x1 = g.add_external({1, 0, DataType::kInt32});
  const int x2 = g.add_external({2, 0, DataType::kInt32});
  const int mul = g.add_node({BatchOp::kMul,
                              {ValueRef::external(x0), ValueRef::external(x1)},
                              DataType::kInt32, 0});
  const int sub_ok =
      g.add_node({BatchOp::kSub, {ValueRef::external(x2), ValueRef::node(mul)},
                  DataType::kInt32, 1});
  g.mark_output(sub_ok);
  EXPECT_TRUE(
      match_instruction(g, {mul, sub_ok}, find_ins(neon(), "vmlsq_s32")));

  Dataflow g2(16, 32);
  const int y0 = g2.add_external({0, 0, DataType::kInt32});
  const int y1 = g2.add_external({1, 0, DataType::kInt32});
  const int y2 = g2.add_external({2, 0, DataType::kInt32});
  const int mul2 = g2.add_node({BatchOp::kMul,
                                {ValueRef::external(y0), ValueRef::external(y1)},
                                DataType::kInt32, 0});
  const int sub_bad =
      g2.add_node({BatchOp::kSub, {ValueRef::node(mul2), ValueRef::external(y2)},
                   DataType::kInt32, 1});
  g2.mark_output(sub_bad);
  EXPECT_FALSE(
      match_instruction(g2, {mul2, sub_bad}, find_ins(neon(), "vmlsq_s32")));
}

TEST(Matcher, FixedImmediateOnlyMatchesExactValue) {
  for (long long amount : {1LL, 2LL}) {
    Dataflow g(16, 32);
    const int x0 = g.add_external({0, 0, DataType::kInt32});
    const int x1 = g.add_external({1, 0, DataType::kInt32});
    const int add = g.add_node({BatchOp::kAdd,
                                {ValueRef::external(x0), ValueRef::external(x1)},
                                DataType::kInt32, 0});
    const int shr = g.add_node({BatchOp::kShr,
                                {ValueRef::node(add), ValueRef::immediate(amount)},
                                DataType::kInt32, 1});
    g.mark_output(shr);
    auto binding =
        match_instruction(g, {add, shr}, find_ins(neon(), "vhaddq_s32"));
    EXPECT_EQ(binding.has_value(), amount == 1) << "amount=" << amount;
  }
}

TEST(Matcher, AnyImmediateBinds) {
  Dataflow g(16, 32);
  const int x0 = g.add_external({0, 0, DataType::kInt32});
  const int shl = g.add_node({BatchOp::kShl,
                              {ValueRef::external(x0), ValueRef::immediate(5)},
                              DataType::kInt32, 0});
  g.mark_output(shl);
  auto binding = match_instruction(g, {shl}, find_ins(neon(), "vshlq_n_s32"));
  ASSERT_TRUE(binding.has_value());
  EXPECT_TRUE(binding->has_imm);
  EXPECT_EQ(binding->imm, 5);
}

TEST(Matcher, ScalarConstBinds) {
  Dataflow g(16, 32);
  const int x0 = g.add_external({0, 0, DataType::kFloat32});
  const int gain = g.add_node({BatchOp::kMulC,
                               {ValueRef::external(x0), ValueRef::scalar_const(0.5)},
                               DataType::kFloat32, 0});
  g.mark_output(gain);
  auto binding = match_instruction(g, {gain}, find_ins(neon(), "vmulq_n_f32"));
  ASSERT_TRUE(binding.has_value());
  EXPECT_TRUE(binding->has_scalar);
  EXPECT_DOUBLE_EQ(binding->scalar, 0.5);
}

TEST(Matcher, PatternMustCoverWholeSubgraph) {
  MulAddGraph h;
  // A single-node instruction cannot cover the two-node subgraph.
  EXPECT_FALSE(
      match_instruction(h.g, {h.mul, h.add}, find_ins(neon(), "vaddq_s32")));
}

TEST(Matcher, MemberUsedAsInputSlotFails) {
  // Add(n0, n0) where n0 is in the subgraph but the pattern expects vector
  // inputs from outside: {mul, add} with add = Add(mul, mul) — the second
  // mul reference cannot bind to an input slot.
  Dataflow g(16, 32);
  const int x0 = g.add_external({0, 0, DataType::kInt32});
  const int x1 = g.add_external({1, 0, DataType::kInt32});
  const int mul = g.add_node({BatchOp::kMul,
                              {ValueRef::external(x0), ValueRef::external(x1)},
                              DataType::kInt32, 0});
  const int add = g.add_node({BatchOp::kAdd,
                              {ValueRef::node(mul), ValueRef::node(mul)},
                              DataType::kInt32, 1});
  g.mark_output(add);
  EXPECT_FALSE(
      match_instruction(g, {mul, add}, find_ins(neon(), "vmlaq_s32")));
}

TEST(Matcher, SameInputSlotMayBindSameSourceTwice) {
  // vmla with I3 == I1: Add(Mul(x0,x1), x0): I1=x0, I2=x1, I3=x0 — distinct
  // slots, same source.  Legal.
  Dataflow g(16, 32);
  const int x0 = g.add_external({0, 0, DataType::kInt32});
  const int x1 = g.add_external({1, 0, DataType::kInt32});
  const int mul = g.add_node({BatchOp::kMul,
                              {ValueRef::external(x0), ValueRef::external(x1)},
                              DataType::kInt32, 0});
  const int add = g.add_node({BatchOp::kAdd,
                              {ValueRef::node(mul), ValueRef::external(x0)},
                              DataType::kInt32, 1});
  g.mark_output(add);
  auto binding = match_instruction(g, {mul, add}, find_ins(neon(), "vmlaq_s32"));
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->inputs.at(1), binding->inputs.at(3));
}

TEST(Matcher, AbaPatternMatches) {
  // Add(Abd(x0,x1), x2) -> vabaq_s32.
  Dataflow g(16, 32);
  const int x0 = g.add_external({0, 0, DataType::kInt32});
  const int x1 = g.add_external({1, 0, DataType::kInt32});
  const int x2 = g.add_external({2, 0, DataType::kInt32});
  const int abd = g.add_node({BatchOp::kAbd,
                              {ValueRef::external(x0), ValueRef::external(x1)},
                              DataType::kInt32, 0});
  const int add = g.add_node({BatchOp::kAdd,
                              {ValueRef::external(x2), ValueRef::node(abd)},
                              DataType::kInt32, 1});
  g.mark_output(add);
  EXPECT_TRUE(match_instruction(g, {abd, add}, find_ins(neon(), "vabaq_s32")));
}

TEST(Matcher, FindMatchingInstructionPrefersLargestPattern) {
  MulAddGraph h;
  auto match = find_matching_instruction(h.g, {h.mul, h.add}, neon());
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->instruction->name, "vmlaq_s32");
  // Singleton gets the plain op.
  auto single = find_matching_instruction(h.g, {h.mul}, neon());
  ASSERT_TRUE(single.has_value());
  EXPECT_EQ(single->instruction->name, "vmulq_s32");
}

TEST(Matcher, FindMatchingInstructionAcrossIsas) {
  MulAddGraph h;
  for (const char* name : {"neon", "sse", "avx2"}) {
    auto match =
        find_matching_instruction(h.g, {h.mul, h.add}, isa::builtin(name));
    ASSERT_TRUE(match.has_value()) << name;
    EXPECT_EQ(match->instruction->node_count(), 2) << name;
  }
}

}  // namespace
}  // namespace hcg::synth
