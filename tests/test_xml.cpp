// Unit tests for the XML parser/writer (the TinyXML substitute).
#include <gtest/gtest.h>

#include "support/error.hpp"
#include "xml/xml.hpp"

namespace hcg::xml {
namespace {

TEST(Xml, ParsesSelfClosingRoot) {
  Document doc = parse("<model/>");
  EXPECT_EQ(doc.root().name(), "model");
  EXPECT_TRUE(doc.root().children().empty());
  EXPECT_TRUE(doc.root().text().empty());
}

TEST(Xml, ParsesAttributes) {
  Document doc = parse(R"(<actor name="x" type="Add" amount='3'/>)");
  EXPECT_EQ(doc.root().attribute("name"), "x");
  EXPECT_EQ(doc.root().attribute("type"), "Add");
  EXPECT_EQ(doc.root().int_attribute("amount"), 3);
}

TEST(Xml, AttributeOrFallsBack) {
  Document doc = parse("<a x=\"1\"/>");
  EXPECT_EQ(doc.root().attribute_or("x", "z"), "1");
  EXPECT_EQ(doc.root().attribute_or("missing", "z"), "z");
  EXPECT_EQ(doc.root().int_attribute_or("missing", 9), 9);
}

TEST(Xml, MissingAttributeThrows) {
  Document doc = parse("<a/>");
  EXPECT_THROW(doc.root().attribute("nope"), ParseError);
}

TEST(Xml, ParsesNestedChildren) {
  Document doc = parse("<m><a/><b><c/></b><a/></m>");
  EXPECT_EQ(doc.root().children().size(), 3u);
  EXPECT_EQ(doc.root().find_children("a").size(), 2u);
  ASSERT_NE(doc.root().find_child("b"), nullptr);
  EXPECT_NE(doc.root().child("b").find_child("c"), nullptr);
  EXPECT_EQ(doc.root().find_child("zzz"), nullptr);
  EXPECT_THROW(doc.root().child("zzz"), ParseError);
}

TEST(Xml, ParsesTextContent) {
  Document doc = parse("<p>  hello world </p>");
  EXPECT_EQ(doc.root().text(), "hello world");
}

TEST(Xml, DecodesEntities) {
  Document doc = parse("<p a=\"&lt;&gt;&amp;&quot;&apos;\">&lt;x&gt; &#65;</p>");
  EXPECT_EQ(doc.root().attribute("a"), "<>&\"'");
  EXPECT_EQ(doc.root().text(), "<x> A");
}

TEST(Xml, HexEntity) {
  Document doc = parse("<p>&#x41;</p>");
  EXPECT_EQ(doc.root().text(), "A");
}

TEST(Xml, RejectsUnknownEntity) {
  EXPECT_THROW(parse("<p>&nope;</p>"), ParseError);
}

TEST(Xml, RejectsOutOfRangeNumericEntity) {
  EXPECT_THROW(parse("<p>&#0;</p>"), ParseError);
  EXPECT_THROW(parse("<p>&#70000;</p>"), ParseError);
}

TEST(Xml, ParsesCdata) {
  Document doc = parse("<p><![CDATA[a < b && c]]></p>");
  EXPECT_EQ(doc.root().text(), "a < b && c");
}

TEST(Xml, SkipsCommentsAndDeclaration) {
  Document doc = parse(
      "<?xml version=\"1.0\"?>\n<!-- header -->\n<m><!-- inner --><a/></m>\n"
      "<!-- trailer -->");
  EXPECT_EQ(doc.root().name(), "m");
  EXPECT_EQ(doc.root().children().size(), 1u);
}

TEST(Xml, RejectsMismatchedClosingTag) {
  EXPECT_THROW(parse("<a><b></a></b>"), ParseError);
}

TEST(Xml, RejectsTrailingContent) {
  EXPECT_THROW(parse("<a/><b/>"), ParseError);
}

TEST(Xml, RejectsUnterminatedElement) {
  EXPECT_THROW(parse("<a><b/>"), ParseError);
}

TEST(Xml, RejectsUnterminatedComment) {
  EXPECT_THROW(parse("<!-- never closed <a/>"), ParseError);
}

TEST(Xml, RejectsDuplicateAttribute) {
  EXPECT_THROW(parse("<a x=\"1\" x=\"2\"/>"), ParseError);
}

TEST(Xml, RejectsUnquotedAttribute) {
  EXPECT_THROW(parse("<a x=1/>"), ParseError);
}

TEST(Xml, RejectsDoctype) {
  EXPECT_THROW(parse("<!DOCTYPE html><a/>"), ParseError);
}

TEST(Xml, ErrorCarriesLineNumber) {
  try {
    parse("<a>\n<b>\n</c>\n</a>");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_GE(e.line(), 2);
  }
}

TEST(Xml, EscapeCoversSpecials) {
  EXPECT_EQ(escape("<a b=\"c\" & 'd'>"),
            "&lt;a b=&quot;c&quot; &amp; &apos;d&apos;&gt;");
  EXPECT_EQ(escape("plain"), "plain");
}

TEST(Xml, WriterRoundTrips) {
  const char* text =
      "<model name=\"m\"><actor name=\"a\" type=\"Add\"/>"
      "<note>hi &amp; bye</note></model>";
  Document doc = parse(text);
  Document again = parse(doc.to_string());
  EXPECT_EQ(again.root().name(), "model");
  EXPECT_EQ(again.root().attribute("name"), "m");
  EXPECT_EQ(again.root().child("actor").attribute("type"), "Add");
  EXPECT_EQ(again.root().child("note").text(), "hi & bye");
}

TEST(Xml, BuildProgrammatically) {
  Element root("model");
  root.set_attribute("name", "x");
  Element& child = root.add_child("actor");
  child.set_attribute("type", "Mul");
  root.set_attribute("name", "y");  // overwrite
  EXPECT_EQ(root.attribute("name"), "y");
  Document doc = parse("<model name=\"y\"><actor type=\"Mul\"/></model>");
  EXPECT_EQ(doc.root().child("actor").attribute("type"),
            root.child("actor").attribute("type"));
}

TEST(Xml, WhitespaceAroundAttributesAccepted) {
  Document doc = parse("<a  x = \"1\"   y= '2' />");
  EXPECT_EQ(doc.root().attribute("x"), "1");
  EXPECT_EQ(doc.root().attribute("y"), "2");
}

TEST(Xml, DeepNesting) {
  std::string text;
  const int depth = 60;
  for (int i = 0; i < depth; ++i) text += "<n" + std::to_string(i) + ">";
  for (int i = depth - 1; i >= 0; --i) text += "</n" + std::to_string(i) + ">";
  Document doc = parse(text);
  const Element* e = &doc.root();
  int count = 0;
  while (!e->children().empty()) {
    e = e->children()[0].get();
    ++count;
  }
  EXPECT_EQ(count, depth - 1);
}

}  // namespace
}  // namespace hcg::xml
