// Tests for hierarchical models: subsystem flattening via the builder API
// and via the XML loader, including passthroughs, nesting, fan-out and
// end-to-end equivalence of the flattened model.
#include <gtest/gtest.h>

#include "actors/resolve.hpp"
#include "benchmodels/benchmodels.hpp"
#include "codegen/generator.hpp"
#include "isa/builtin.hpp"
#include "model/builder.hpp"
#include "model/loader.hpp"
#include "model/subsystem.hpp"
#include "vm/interpreter.hpp"

namespace hcg {
namespace {

/// A reusable inner block: out0 = (a - b) * taps-like gain, out1 = a.
Model biquad_like_inner() {
  ModelBuilder b("inner");
  PortRef a = b.inport("a", DataType::kFloat32, Shape({16}));
  PortRef w = b.inport("w", DataType::kFloat32, Shape({16}));
  PortRef d = b.actor("d", "Sub", {a, w});
  PortRef g = b.actor("g", "Gain", {d}, {{"gain", "0.25"}});
  b.outport("out0", g);
  b.outport("thru", a);  // pure passthrough of input 0
  return b.take();
}

TEST(Subsystem, BuilderInstantiationFlattens) {
  Model inner = biquad_like_inner();
  ModelBuilder b("top");
  PortRef x = b.inport("x", DataType::kFloat32, Shape({16}));
  PortRef w = b.inport("w", DataType::kFloat32, Shape({16}));
  std::vector<PortRef> outs = instantiate_subsystem(b, "blk", inner, {x, w});
  ASSERT_EQ(outs.size(), 2u);
  PortRef sum = b.actor("sum", "Add", {outs[0], outs[1]});
  b.outport("y", sum);
  Model m = b.take();

  // Inner actors appear under the prefix; ports do not.
  EXPECT_NE(m.find_actor("blk__d"), kNoActor);
  EXPECT_NE(m.find_actor("blk__g"), kNoActor);
  EXPECT_EQ(m.find_actor("blk__a"), kNoActor);
  EXPECT_EQ(m.find_actor("blk__out0"), kNoActor);
  // The passthrough output resolved to the parent input directly.
  EXPECT_EQ(m.incoming(m.find_actor("sum"), 1)->src, m.find_actor("x"));
  EXPECT_NO_THROW(resolve_model(m));
}

TEST(Subsystem, FlattenedModelComputesLikeInlineConstruction) {
  Model inner = biquad_like_inner();
  ModelBuilder b("top");
  PortRef x = b.inport("x", DataType::kFloat32, Shape({16}));
  PortRef w = b.inport("w", DataType::kFloat32, Shape({16}));
  std::vector<PortRef> outs = instantiate_subsystem(b, "blk", inner, {x, w});
  b.outport("y", b.actor("sum", "Add", {outs[0], outs[1]}));
  Model flattened = resolved(b.take());

  // The same computation written flat: y = (x - w)*0.25 + x.
  ModelBuilder f("flat");
  PortRef fx = f.inport("x", DataType::kFloat32, Shape({16}));
  PortRef fw = f.inport("w", DataType::kFloat32, Shape({16}));
  PortRef fd = f.actor("d", "Sub", {fx, fw});
  PortRef fg = f.actor("g", "Gain", {fd}, {{"gain", "0.25"}});
  f.outport("y", f.actor("sum", "Add", {fg, fx}));
  Model reference = resolved(f.take());

  auto inputs = benchmodels::workload(flattened, 21);
  Interpreter a(flattened), b2(reference);
  a.init();
  b2.init();
  auto ra = a.step(inputs);
  auto rb = b2.step(inputs);
  EXPECT_EQ(ra[0].max_abs_difference(rb[0]), 0.0);
}

TEST(Subsystem, TwoInstancesOfTheSameInnerModel) {
  Model inner = biquad_like_inner();
  ModelBuilder b("top");
  PortRef x = b.inport("x", DataType::kFloat32, Shape({16}));
  PortRef w = b.inport("w", DataType::kFloat32, Shape({16}));
  auto first = instantiate_subsystem(b, "s1", inner, {x, w});
  auto second = instantiate_subsystem(b, "s2", inner, {first[0], w});
  b.outport("y", second[0]);
  Model m = b.take();
  EXPECT_NE(m.find_actor("s1__g"), kNoActor);
  EXPECT_NE(m.find_actor("s2__g"), kNoActor);
  EXPECT_NO_THROW(resolve_model(m));
}

TEST(Subsystem, InputArityIsChecked) {
  Model inner = biquad_like_inner();
  ModelBuilder b("top");
  PortRef x = b.inport("x", DataType::kFloat32, Shape({16}));
  EXPECT_THROW(instantiate_subsystem(b, "s", inner, {x}), ModelError);
}

TEST(Subsystem, UnconnectedInnerOutportRejected) {
  Model inner("bad");
  ActorId in = inner.add_actor("i", "Inport");
  inner.actor(in).set_param("dtype", "f32");
  inner.actor(in).set_param("shape", "4");
  inner.add_actor("o", "Outport");  // dangling
  ModelBuilder b("top");
  PortRef x = b.inport("x", DataType::kFloat32, Shape({4}));
  EXPECT_THROW(instantiate_subsystem(b, "s", inner, {x}), ModelError);
}

constexpr const char* kHierXml = R"(
<model name="hier">
  <actor name="x" type="Inport" dtype="f32" shape="32"/>
  <actor name="w" type="Inport" dtype="f32" shape="32"/>
  <actor name="filt" type="Subsystem">
    <model name="filt_impl">
      <actor name="a"   type="Inport" dtype="f32" shape="32"/>
      <actor name="b"   type="Inport" dtype="f32" shape="32"/>
      <actor name="d"   type="Sub"/>
      <actor name="g"   type="Gain" gain="0.5"/>
      <actor name="o"   type="Outport"/>
      <actor name="echo" type="Outport"/>
      <connect from="a" to="d:0"/>
      <connect from="b" to="d:1"/>
      <connect from="d" to="g"/>
      <connect from="g" to="o"/>
      <connect from="b" to="echo"/>
    </model>
  </actor>
  <actor name="sum" type="Add"/>
  <actor name="y" type="Outport"/>
  <connect from="x" to="filt:0"/>
  <connect from="w" to="filt:1"/>
  <connect from="filt:0" to="sum:0"/>
  <connect from="filt:1" to="sum:1"/>
  <connect from="sum" to="y"/>
</model>)";

TEST(Subsystem, XmlLoaderFlattens) {
  Model m = load_model(kHierXml);
  EXPECT_NE(m.find_actor("filt__d"), kNoActor);
  EXPECT_NE(m.find_actor("filt__g"), kNoActor);
  EXPECT_EQ(m.find_actor("filt"), kNoActor);  // no placeholder actor remains
  // filt:1 is a passthrough of input 1 (= w).
  EXPECT_EQ(m.incoming(m.find_actor("sum"), 1)->src, m.find_actor("w"));
  EXPECT_NO_THROW(resolve_model(m));
}

TEST(Subsystem, XmlHierarchyGeneratesFusedSimd) {
  Model m = resolved(load_model(kHierXml));
  auto gen = codegen::make_hcg_generator(isa::builtin("neon_sim"));
  codegen::GeneratedCode code = gen->generate(m);
  // Sub, Gain and Add fuse into one region (the hierarchy is invisible to
  // Algorithm 2 after flattening).
  EXPECT_EQ(code.fused_regions, 1);
  EXPECT_EQ(code.simd_instructions,
            (std::vector<std::string>{"vsubq_f32", "vmulq_n_f32",
                                      "vaddq_f32"}));
}

TEST(Subsystem, NestedSubsystemsFlattenRecursively) {
  const char* xml = R"(
<model name="outer">
  <actor name="x" type="Inport" dtype="i32" shape="8"/>
  <actor name="lvl1" type="Subsystem">
    <model name="mid">
      <actor name="i" type="Inport" dtype="i32" shape="8"/>
      <actor name="lvl2" type="Subsystem">
        <model name="leaf">
          <actor name="i" type="Inport" dtype="i32" shape="8"/>
          <actor name="n" type="BitNot"/>
          <actor name="o" type="Outport"/>
          <connect from="i" to="n"/>
          <connect from="n" to="o"/>
        </model>
      </actor>
      <actor name="o" type="Outport"/>
      <connect from="i" to="lvl2:0"/>
      <connect from="lvl2:0" to="o"/>
    </model>
  </actor>
  <actor name="y" type="Outport"/>
  <connect from="x" to="lvl1:0"/>
  <connect from="lvl1:0" to="y"/>
</model>)";
  Model m = load_model(xml);
  EXPECT_NE(m.find_actor("lvl1__lvl2__n"), kNoActor);
  resolve_model(m);
  Interpreter interp(m);
  Tensor in(DataType::kInt32, Shape({8}));
  in.set_int(3, 5);
  auto out = interp.step({in});
  EXPECT_EQ(out[0].get_int(3), ~5);
  EXPECT_EQ(out[0].get_int(0), ~0);
}

TEST(Subsystem, MissingInnerModelRejected) {
  EXPECT_THROW(
      load_model("<model name=\"t\"><actor name=\"s\" type=\"Subsystem\"/>"
                 "</model>"),
      ModelError);
}

TEST(Subsystem, DirectPassthroughChainAcrossTwoSubsystems) {
  const char* xml = R"(
<model name="chainy">
  <actor name="x" type="Inport" dtype="f32" shape="4"/>
  <actor name="p1" type="Subsystem">
    <model name="pass1">
      <actor name="i" type="Inport" dtype="f32" shape="4"/>
      <actor name="o" type="Outport"/>
      <connect from="i" to="o"/>
    </model>
  </actor>
  <actor name="p2" type="Subsystem">
    <model name="pass2">
      <actor name="i" type="Inport" dtype="f32" shape="4"/>
      <actor name="o" type="Outport"/>
      <connect from="i" to="o"/>
    </model>
  </actor>
  <actor name="y" type="Outport"/>
  <connect from="x" to="p1:0"/>
  <connect from="p1:0" to="p2:0"/>
  <connect from="p2:0" to="y"/>
</model>)";
  Model m = load_model(xml);
  // The whole chain collapses to x -> y.
  EXPECT_EQ(m.incoming(m.find_actor("y"), 0)->src, m.find_actor("x"));
}

}  // namespace
}  // namespace hcg
