// Integration tests for the cgir optimization pipeline (-O1 and -O2):
// generated code is compiled and executed against the interpreter oracle
// across the scalar remainder widths, fusion/tiling/layout effects are
// asserted on the bench models, and output stays byte-identical across
// --jobs counts at every opt level.
#include <gtest/gtest.h>

#include "actors/resolve.hpp"
#include "benchmodels/benchmodels.hpp"
#include "cgir/cgir.hpp"
#include "codegen/generator.hpp"
#include "isa/builtin.hpp"
#include "model/builder.hpp"
#include "obs/json.hpp"
#include "toolchain/compiled_model.hpp"
#include "vm/interpreter.hpp"

namespace hcg {
namespace {

codegen::EmitConfig hcg_config(int opt_level, int jobs = 1) {
  codegen::EmitConfig config;
  config.tool_name = "hcg";
  config.batch_mode = codegen::BatchMode::kRegions;
  config.isa = &isa::builtin("neon_sim");
  config.fold_scalar_expressions = true;
  config.reuse_buffers = true;
  config.opt_level = opt_level;
  config.jobs = jobs;
  return config;
}

/// Two independent Add/Mul chains over f32[n]: two batch regions whose
/// loops have identical domains, so -O1 can fuse across regions.
Model two_chain_model(int n) {
  ModelBuilder b("chains" + std::to_string(n));
  for (int chain = 0; chain < 2; ++chain) {
    const std::string tag = std::to_string(chain);
    PortRef x = b.inport("x" + tag, DataType::kFloat32, Shape{n});
    PortRef w = b.inport("w" + tag, DataType::kFloat32, Shape{n});
    PortRef a = b.actor("add" + tag, "Add", {x, w});
    PortRef m = b.actor("mul" + tag, "Mul", {a, w});
    b.outport("y" + tag, m);
  }
  return b.take();
}

bool have_cc() {
  static const bool ok = toolchain::compiler_available();
  return ok;
}

double compare_to_oracle(const Model& model, const codegen::GeneratedCode& code,
                         std::uint64_t seed = 42) {
  const std::vector<Tensor> inputs = benchmodels::workload(model, seed);
  Interpreter oracle(model);
  oracle.init();
  const std::vector<Tensor> expected = oracle.step(inputs);

  toolchain::CompiledModel compiled(code);
  compiled.init();
  const std::vector<Tensor> got = compiled.step_tensors(model, inputs);

  EXPECT_EQ(got.size(), expected.size());
  double worst = 0;
  for (size_t i = 0; i < got.size(); ++i) {
    worst = std::max(worst, got[i].max_abs_difference(expected[i]));
  }
  return worst;
}

// ---------------------------------------------------------------------------
// Exec oracle across the scalar remainder widths (vector width is 4 lanes
// for f32 on neon_sim): below width, exact width, width+1, 2*width-1.
// ---------------------------------------------------------------------------

class RemainderWidths : public ::testing::TestWithParam<int> {};

TEST_P(RemainderWidths, MatchesOracleAtO0AndO1) {
  if (!have_cc()) GTEST_SKIP() << "no C compiler available";
  const int n = GetParam();
  const Model model = resolved(two_chain_model(n));

  codegen::GeneratedCode at_o0 = codegen::emit_model(model, hcg_config(0));
  codegen::GeneratedCode at_o1 = codegen::emit_model(model, hcg_config(1));
  EXPECT_LT(compare_to_oracle(model, at_o0), 1e-6) << "-O0, n=" << n;
  EXPECT_LT(compare_to_oracle(model, at_o1), 1e-6) << "-O1, n=" << n;

  EXPECT_EQ(at_o0.report.opt_level, 0);
  EXPECT_EQ(at_o0.report.loops_fused, 0);
  EXPECT_EQ(at_o1.report.opt_level, 1);
  if (n >= 4) {
    // Both regions vectorize with identical loop shapes, so at least the
    // two main loops (and the two remainder loops when n % 4 != 0) fuse.
    EXPECT_GE(at_o1.report.loops_fused, 1) << "n=" << n;
    if (n % 4 != 0) {
      EXPECT_GE(at_o1.report.loops_fused, 2) << "n=" << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, RemainderWidths,
                         ::testing::Values(3, 4, 5, 7));

// ---------------------------------------------------------------------------
// Scattered per-actor loops fuse into one loop with forwarded handoffs
// ---------------------------------------------------------------------------

TEST(OptPasses, ScatteredChainFusesAndForwards) {
  if (!have_cc()) GTEST_SKIP() << "no C compiler available";
  const Model model = resolved(benchmodels::batch_chain_model(3, 64));
  auto at_o0 = codegen::make_simulink_generator(&isa::builtin("neon_sim"), 0);
  auto at_o1 = codegen::make_simulink_generator(&isa::builtin("neon_sim"), 1);

  codegen::GeneratedCode base = at_o0->generate(model);
  codegen::GeneratedCode opt = at_o1->generate(model);
  EXPECT_LT(compare_to_oracle(model, base), 1e-6);
  EXPECT_LT(compare_to_oracle(model, opt), 1e-6);

  // Three per-actor loops collapse into one; the handoff buffers between
  // them become register forwards, so the optimized unit stores fewer
  // intermediate buffers and elides their load/store pairs.
  EXPECT_GE(opt.report.loops_fused, 2);
  EXPECT_GE(opt.report.copies_elided, 2);
  EXPECT_LT(opt.static_buffer_bytes, base.static_buffer_bytes);
}

// ---------------------------------------------------------------------------
// The intensive farm: fusion count and arena savings land in the report
// ---------------------------------------------------------------------------

TEST(OptPasses, FarmReportsFusionAndArenaSavings) {
  if (!have_cc()) GTEST_SKIP() << "no C compiler available";
  const Model model = resolved(benchmodels::intensive_farm_model(20, false));
  synth::SelectionHistory history;
  auto tool = codegen::make_hcg_generator(isa::builtin("neon_sim"), &history,
                                          {}, /*opt_level=*/1);
  codegen::GeneratedCode code = tool->generate(model);

  EXPECT_GE(code.report.loops_fused, 2);
  EXPECT_GT(code.report.arena_bytes_saved, 0u);
  EXPECT_EQ(code.report.opt_level, 1);

  // Both pass counters must surface in the hcg-report-v1 JSON.
  const obs::JsonValue doc =
      obs::json_parse(code.report.to_json(/*include_metrics=*/false));
  const obs::JsonValue& cg = doc.at("codegen");
  EXPECT_EQ(cg.at("opt_level").number, 1);
  EXPECT_GE(cg.at("fusion").at("loops_fused").number, 2);
  EXPECT_GT(cg.at("arena").at("bytes_saved").number, 0);

  EXPECT_LT(compare_to_oracle(model, code), 2e-2);
}

TEST(OptPasses, ArenaRebindingShrinksStaticBuffers) {
  if (!have_cc()) GTEST_SKIP() << "no C compiler available";
  const Model model = resolved(benchmodels::intensive_farm_model(20, false));
  codegen::EmitConfig with_arena = hcg_config(1);
  codegen::EmitConfig no_arena = hcg_config(1);
  no_arena.reuse_buffers = false;
  codegen::GeneratedCode shared = codegen::emit_model(model, with_arena);
  codegen::GeneratedCode isolated = codegen::emit_model(model, no_arena);

  // The arena pass accounts for exactly the bytes it folded away.
  EXPECT_LT(shared.static_buffer_bytes, isolated.static_buffer_bytes);
  EXPECT_EQ(shared.static_buffer_bytes + shared.report.arena_bytes_saved,
            isolated.static_buffer_bytes);
  EXPECT_EQ(isolated.report.arena_bytes_saved, 0u);
  EXPECT_LT(compare_to_oracle(model, shared), 2e-2);
}

// ---------------------------------------------------------------------------
// PR 2 invariant holds at -O1: byte-identical output across --jobs counts
// ---------------------------------------------------------------------------

TEST(OptPasses, O1ByteIdenticalAcrossJobCounts) {
  const Model model = resolved(two_chain_model(7));
  codegen::GeneratedCode serial =
      codegen::emit_model(model, hcg_config(1, /*jobs=*/1));
  codegen::GeneratedCode parallel =
      codegen::emit_model(model, hcg_config(1, /*jobs=*/8));
  EXPECT_EQ(serial.source, parallel.source);
  EXPECT_EQ(serial.cgir_dump, parallel.cgir_dump);
  EXPECT_EQ(serial.report.loops_fused, parallel.report.loops_fused);
  EXPECT_EQ(serial.report.arena_bytes_saved, parallel.report.arena_bytes_saved);
}

// ---------------------------------------------------------------------------
// The cgir dump surface round-trips the exact emitted program
// ---------------------------------------------------------------------------

TEST(OptPasses, EmittedDumpRoundTripsToSource) {
  const Model model = resolved(two_chain_model(7));
  for (int level : {0, 1}) {
    codegen::GeneratedCode code =
        codegen::emit_model(model, hcg_config(level));
    ASSERT_FALSE(code.cgir_dump.empty());
    cgir::TranslationUnit reparsed = cgir::parse_dump(code.cgir_dump);
    EXPECT_EQ(cgir::print(reparsed), code.source) << "-O" << level;
  }
}

// ---------------------------------------------------------------------------
// -O2 cross-scale fusion: exec oracle across strip widths
// ---------------------------------------------------------------------------

/// i8 Mul-only pipeline: the NEON table has no i8 multiply, so the whole
/// model is one conventional scalar loop — the tiling workload.
Model mul_only_model(int n) {
  ModelBuilder b("mulonly" + std::to_string(n));
  PortRef a = b.inport("a", DataType::kInt8, Shape{n});
  PortRef c = b.inport("c", DataType::kInt8, Shape{n});
  b.outport("y", b.actor("m", "Mul", {a, c}));
  return b.take();
}

class CrossScaleWidths : public ::testing::TestWithParam<int> {};

TEST_P(CrossScaleWidths, MatchesOracleAtEveryOptLevel) {
  if (!have_cc()) GTEST_SKIP() << "no C compiler available";
  const int n = GetParam();
  const Model model = resolved(benchmodels::mixed_pipeline_model(n));

  for (int level : {0, 1, 2}) {
    codegen::EmitConfig config = hcg_config(level);
    config.verify_cgir = true;  // every pass checkpoint re-verifies
    codegen::GeneratedCode code = codegen::emit_model(model, config);
    EXPECT_LT(compare_to_oracle(model, code), 1e-6)
        << "-O" << level << ", n=" << n;
    EXPECT_EQ(code.report.opt_level, level);
    if (level < 2) {
      EXPECT_EQ(code.report.cross_scale_fused, 0) << "n=" << n;
      EXPECT_EQ(code.report.strips_localized, 0) << "n=" << n;
    }
  }

  // At vector width and above the scalar Mul loop strip-mines into the
  // surrounding vector region (i8 runs 16 lanes on neon_sim) and the lane
  // loop is rewritten onto local lane buffers.
  codegen::GeneratedCode at_o2 = codegen::emit_model(model, hcg_config(2));
  if (n >= 16) {
    EXPECT_GE(at_o2.report.cross_scale_fused, 1) << "n=" << n;
    EXPECT_GE(at_o2.report.strips_localized, 1) << "n=" << n;
    EXPECT_NE(at_o2.source.find("memcpy(ln0_"), std::string::npos) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, CrossScaleWidths,
                         ::testing::Values(3, 5, 7, 9, 16, 17));

// ---------------------------------------------------------------------------
// -O2 tiling: non-multiple-of-tile shapes keep their scalar tails
// ---------------------------------------------------------------------------

class TiledShapes : public ::testing::TestWithParam<int> {};

TEST_P(TiledShapes, MatchesOracleWithScalarTail) {
  if (!have_cc()) GTEST_SKIP() << "no C compiler available";
  const int n = GetParam();
  const Model model = resolved(mul_only_model(n));

  for (int level : {0, 1, 2}) {
    codegen::EmitConfig config = hcg_config(level);
    config.verify_cgir = true;
    config.tile_elems = 16;
    codegen::GeneratedCode code = codegen::emit_model(model, config);
    EXPECT_LT(compare_to_oracle(model, code), 1e-6)
        << "-O" << level << ", n=" << n;
    if (level < 2) {
      EXPECT_EQ(code.report.loops_tiled, 0) << "n=" << n;
    } else {
      EXPECT_GE(code.report.loops_tiled, 1) << "n=" << n;
      EXPECT_GE(code.report.strips_localized, 1) << "n=" << n;
      if (n % 16 != 0) {
        // The scalar tail covers [n - n % 16, n).
        const std::string tail_open =
            "for (int i = " + std::to_string(n - n % 16) + "; i < " +
            std::to_string(n) + "; ++i)";
        EXPECT_NE(code.source.find(tail_open), std::string::npos) << "n=" << n;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TiledShapes, ::testing::Values(33, 37, 100));

// ---------------------------------------------------------------------------
// -O2 determinism: byte-identical output across --jobs counts, and the dump
// surface round-trips the strip-mined loops
// ---------------------------------------------------------------------------

TEST(OptPasses, O2ByteIdenticalAcrossJobCounts) {
  for (const Model& model :
       {resolved(benchmodels::mixed_pipeline_model(100)),
        resolved(mul_only_model(100)), resolved(two_chain_model(7))}) {
    codegen::GeneratedCode serial =
        codegen::emit_model(model, hcg_config(2, /*jobs=*/1));
    codegen::GeneratedCode parallel =
        codegen::emit_model(model, hcg_config(2, /*jobs=*/8));
    EXPECT_EQ(serial.source, parallel.source) << model.name();
    EXPECT_EQ(serial.cgir_dump, parallel.cgir_dump) << model.name();
  }
}

TEST(OptPasses, O2DumpRoundTripsStripMinedLoops) {
  const Model model = resolved(benchmodels::mixed_pipeline_model(37));
  codegen::GeneratedCode code = codegen::emit_model(model, hcg_config(2));
  ASSERT_FALSE(code.cgir_dump.empty());
  // The dump names the strip-mined lane loops and their induction variable.
  EXPECT_NE(code.cgir_dump.find("strip=1"), std::string::npos);
  EXPECT_NE(code.cgir_dump.find("ivar=k"), std::string::npos);
  cgir::TranslationUnit reparsed = cgir::parse_dump(code.cgir_dump);
  EXPECT_EQ(cgir::print(reparsed), code.source);
}

TEST(OptPasses, O2ReportCountsReachJson) {
  const Model model = resolved(benchmodels::mixed_pipeline_model(64));
  codegen::GeneratedCode code = codegen::emit_model(model, hcg_config(2));
  ASSERT_GE(code.report.cross_scale_fused, 1);

  const obs::JsonValue doc =
      obs::json_parse(code.report.to_json(/*include_metrics=*/false));
  const obs::JsonValue& cg = doc.at("codegen");
  EXPECT_EQ(cg.at("opt_level").number, 2);
  EXPECT_GE(cg.at("fusion").at("cross_scale_fused").number, 1);
  EXPECT_GE(cg.at("layout").at("stride1_accesses").number, 1);
  EXPECT_GE(cg.at("layout").at("strips_localized").number, 1);
}

// ---------------------------------------------------------------------------
// -O2 verifier checkpoints: every pass of the extended pipeline re-verifies
// ---------------------------------------------------------------------------

TEST(OptPasses, O2VerifierCheckpointsEveryPass) {
  const Model model = resolved(benchmodels::mixed_pipeline_model(64));
  codegen::EmitConfig config = hcg_config(2);
  config.verify_cgir = true;
  codegen::GeneratedCode code = codegen::emit_model(model, config);
  const std::vector<std::string> expected = {
      "lower",       "fuse_loops", "fuse_cross_scale", "forward_copies",
      "eliminate_dead_buffers",    "tile_loops",       "reuse_arena",
      "coalesce_layout",           "localize_strips"};
  EXPECT_EQ(code.report.verified_passes, expected);
}

}  // namespace
}  // namespace hcg
