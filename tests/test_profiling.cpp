// Runtime profiling surface (docs/PROFILING.md): --profile-gen
// instrumentation is inert unless enabled, numerically invisible when
// compiled in, degrades cleanly under injected faults, and the bench
// regression gate actually fires.
#include <gtest/gtest.h>

#include <cstdlib>

#include "actors/resolve.hpp"
#include "benchmodels/benchmodels.hpp"
#include "codegen/generator.hpp"
#include "isa/builtin.hpp"
#include "obs/json.hpp"
#include "support/error.hpp"
#include "support/fileio.hpp"
#include "toolchain/compiled_model.hpp"
#include "toolchain/profile_runner.hpp"
#include "vm/interpreter.hpp"

namespace hcg {
namespace {

struct CliResult {
  int exit_code;
  std::string output;  // stdout + stderr
};

/// Runs an executable through the shell with an optional `VAR=val` env
/// prefix (the fault-injection tests arm HCG_FAULTS this way).
CliResult run_exe(const std::string& exe, const std::string& args,
                  const std::string& env_prefix = "") {
  TempDir dir;
  const auto out_path = dir.path() / "out.txt";
  const std::string cmd = (env_prefix.empty() ? "" : env_prefix + " ") + exe +
                          " " + args + " > " + out_path.string() + " 2>&1";
  const int rc = std::system(cmd.c_str());
  std::string output;
  try {
    output = read_file(out_path);
  } catch (const Error&) {
  }
  return CliResult{rc == -1 ? -1 : WEXITSTATUS(rc), output};
}

codegen::GeneratedCode generate(const Model& model, bool profile_gen) {
  auto hcg = codegen::make_hcg_generator(isa::builtin("neon_sim"), nullptr,
                                         {}, /*opt_level=*/1, profile_gen);
  return hcg->generate(model);
}

// ---------------------------------------------------------------------------
// Byte identity: the profiling pass must be structurally unreachable when
// --profile-gen is off.

TEST(ProfileGen, OffMeansByteIdenticalOutput) {
  Model model = resolved(benchmodels::paper_fig4_model());
  for (int opt_level : {0, 1}) {
    codegen::EmitConfig config;
    config.tool_name = "hcg";
    config.batch_mode = codegen::BatchMode::kRegions;
    config.isa = &isa::builtin("neon_sim");
    config.select_intensive = true;
    config.opt_level = opt_level;
    const codegen::GeneratedCode plain = codegen::emit_model(model, config);
    config.profile_gen = false;  // explicit off == default
    const codegen::GeneratedCode off = codegen::emit_model(model, config);
    EXPECT_EQ(plain.source, off.source) << "-O" << opt_level;
    EXPECT_EQ(plain.cgir_dump, off.cgir_dump) << "-O" << opt_level;
    EXPECT_EQ(off.source.find("HCG_PROF"), std::string::npos);
    EXPECT_TRUE(off.profile_sites.empty());
  }
}

TEST(ProfileGen, OnInstrumentsSitesBehindMacro) {
  // fft_model carries an intensive FFT actor, so both site kinds appear.
  Model model = resolved(benchmodels::fft_model());
  const codegen::GeneratedCode code = generate(model, true);
  ASSERT_FALSE(code.profile_sites.empty());
  EXPECT_NE(code.source.find("#ifdef HCG_PROF"), std::string::npos);
  EXPECT_NE(code.source.find("hcg_prof_dump"), std::string::npos);
  bool has_intensive = false;
  for (const cgir::ProfileSite& site : code.profile_sites) {
    has_intensive |= site.kind == "intensive";
  }
  EXPECT_TRUE(has_intensive);
}

// ---------------------------------------------------------------------------
// Exec oracle: instrumentation must never change what the code computes —
// neither dormant (no -DHCG_PROF) nor active (counters running).

TEST(ProfileGen, InstrumentedCodeMatchesOracle) {
  if (!toolchain::compiler_available()) {
    GTEST_SKIP() << "no C compiler on this host";
  }
  Model model = resolved(benchmodels::paper_fig4_model());
  const std::vector<Tensor> inputs = benchmodels::workload(model);

  Interpreter oracle(model);
  oracle.init();
  const std::vector<Tensor> expected = oracle.step(inputs);

  const codegen::GeneratedCode code = generate(model, true);
  for (const bool define_prof : {false, true}) {
    toolchain::CompileOptions options;
    if (define_prof) options.extra_flags.push_back("-DHCG_PROF");
    toolchain::CompiledModel compiled(code, options);
    compiled.init();
    const std::vector<Tensor> got = compiled.step_tensors(model, inputs);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_LE(got[i].max_abs_difference(expected[i]), 2e-2)
          << "-DHCG_PROF=" << define_prof << " output " << i;
    }
  }
}

TEST(ProfileRunner, MeasuresEverySite) {
  if (!toolchain::compiler_available()) {
    GTEST_SKIP() << "no C compiler on this host";
  }
  Model model = resolved(benchmodels::paper_fig4_model());
  const codegen::GeneratedCode code = generate(model, true);
  toolchain::ProfileRunOptions options;
  options.reps = 10;
  const toolchain::ProfileResult result =
      toolchain::run_profile(code, model, options);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.reps, 10);
  EXPECT_FALSE(result.clock.empty());
  ASSERT_EQ(result.sites.size(), code.profile_sites.size());
  for (const toolchain::ProfileSiteSample& site : result.sites) {
    EXPECT_GT(site.calls, 0u) << site.id;
    // warm-up + reps steps, each hitting every top-level site once
    EXPECT_EQ(site.calls, 11u) << site.id;
  }
}

TEST(ProfileRunner, DegradesWithoutInstrumentation) {
  Model model = resolved(benchmodels::paper_fig4_model());
  const codegen::GeneratedCode code = generate(model, false);
  const toolchain::ProfileResult result = toolchain::run_profile(code, model);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("profile-gen"), std::string::npos);
}

// ---------------------------------------------------------------------------
// `hcgc profile` end to end

std::string fig4_path() {
  return std::string(HCG_EXAMPLES_DIR) + "/fig4.xml";
}

TEST(ProfileCli, ReportCarriesRuntimeProfile) {
  if (!toolchain::compiler_available()) {
    GTEST_SKIP() << "no C compiler on this host";
  }
  TempDir dir;
  const std::string report_path = (dir.path() / "report.json").string();
  CliResult r = run_exe(HCG_HCGC_PATH, "profile " + fig4_path() +
                                           " --isa neon_sim --reps 5 "
                                           "--report " + report_path);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("ns/call"), std::string::npos);

  const obs::JsonValue report = obs::json_parse(read_file(report_path));
  const obs::JsonValue* profile = report.find("runtime_profile");
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->at("reps").number, 5.0);
  const obs::JsonValue& sites = profile->at("sites");
  ASSERT_TRUE(sites.is_array());
  ASSERT_FALSE(sites.array.empty());
  bool has_prediction = false;
  for (const obs::JsonValue& site : sites.array) {
    EXPECT_NE(site.find("id"), nullptr);
    EXPECT_NE(site.find("ns"), nullptr);
    EXPECT_NE(site.find("calls"), nullptr);
    EXPECT_NE(site.find("iters"), nullptr);
    EXPECT_NE(site.find("mean_ns_per_call"), nullptr);
    has_prediction |= site.find("abs_err_pct") != nullptr;
  }
  // fig4's FFT is an intensive actor with measured candidates, so at least
  // one site joins against Algorithm 1's predicted cost.
  EXPECT_TRUE(has_prediction);
}

TEST(ProfileCli, SpawnFaultDegradesToPlainReport) {
  TempDir dir;
  const std::string report_path = (dir.path() / "report.json").string();
  CliResult r = run_exe(HCG_HCGC_PATH,
                        "profile " + fig4_path() +
                            " --isa neon_sim --reps 5 --report " + report_path,
                        "HCG_FAULTS='subprocess.spawn=fail'");
  // Degraded, not dead: exit 0, report written, no runtime_profile section,
  // HCG502 explains why.
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("HCG502"), std::string::npos);
  const obs::JsonValue report = obs::json_parse(read_file(report_path));
  EXPECT_EQ(report.find("runtime_profile"), nullptr);
  const obs::JsonValue* diags = report.find("diagnostics");
  ASSERT_NE(diags, nullptr);
  bool saw_degraded = false;
  for (const obs::JsonValue& d : diags->array) {
    const obs::JsonValue* code = d.find("code");
    saw_degraded |= code != nullptr && code->string == "HCG502";
  }
  EXPECT_TRUE(saw_degraded);
}

// ---------------------------------------------------------------------------
// Bench regression gate (bench_runner --check)

TEST(BenchGate, RecordThenCheckPasses) {
  TempDir base_dir;
  TempDir out_dir;
  // A huge threshold isolates this test from scheduler noise: it checks the
  // gate's mechanics, not this machine's timing stability.  Count metrics
  // still compare exactly.
  CliResult record = run_exe(
      HCG_BENCH_RUNNER_PATH,
      "--record --suite codegen --out " + base_dir.path().string(),
      "HCG_BENCH_SECONDS=0.02");
  ASSERT_EQ(record.exit_code, 0) << record.output;
  CliResult check = run_exe(HCG_BENCH_RUNNER_PATH,
                            "--check --suite codegen --threshold 2000"
                            " --baseline " + base_dir.path().string() +
                                " --out " + out_dir.path().string(),
                            "HCG_BENCH_SECONDS=0.02");
  EXPECT_EQ(check.exit_code, 0) << check.output;
  EXPECT_NE(check.output.find("0 regressions"), std::string::npos)
      << check.output;
  // Both sides wrote the standardized artifact.
  EXPECT_TRUE(obs::json_valid(
      read_file(base_dir.path() / "BENCH_codegen.json")));
}

TEST(BenchGate, InjectedSlowdownTripsGate) {
  TempDir base_dir;
  TempDir out_dir;
  CliResult record = run_exe(
      HCG_BENCH_RUNNER_PATH,
      "--record --suite codegen --out " + base_dir.path().string(),
      "HCG_BENCH_SECONDS=0.02");
  ASSERT_EQ(record.exit_code, 0) << record.output;
  // bench.measure inflates every timed reading 16x (+1500%), far past even
  // the generous threshold — the gate must exit 9.
  CliResult check = run_exe(HCG_BENCH_RUNNER_PATH,
                            "--check --suite codegen --threshold 200"
                            " --baseline " + base_dir.path().string() +
                                " --out " + out_dir.path().string(),
                            "HCG_BENCH_SECONDS=0.02 "
                            "HCG_FAULTS='bench.measure=fail'");
  EXPECT_EQ(check.exit_code, 9) << check.output;
  EXPECT_NE(check.output.find("REGRESSION"), std::string::npos);
}

}  // namespace
}  // namespace hcg
