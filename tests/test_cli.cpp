// End-to-end tests of the hcgc command-line tool: every subcommand is run
// as a real subprocess against a model file written by the test.
#include <gtest/gtest.h>

#include <cstdlib>

#include "cgir/cgir.hpp"
#include "obs/json.hpp"
#include "support/error.hpp"
#include "support/fileio.hpp"

namespace hcg {
namespace {

struct CliResult {
  int exit_code;
  std::string output;  // stdout + stderr
};

CliResult run_cli(const std::string& args) {
  TempDir dir;
  const auto out_path = dir.path() / "out.txt";
  const std::string cmd = std::string(HCG_HCGC_PATH) + " " + args + " > " +
                          out_path.string() + " 2>&1";
  const int rc = std::system(cmd.c_str());
  std::string output;
  try {
    output = read_file(out_path);
  } catch (const Error&) {
  }
  return CliResult{rc == -1 ? -1 : WEXITSTATUS(rc), output};
}

class CliFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    model_path_ = (dir_.path() / "model.xml").string();
    write_file(model_path_, R"(
<model name="cli_fir">
  <actor name="x"    type="Inport"   dtype="i32" shape="64"/>
  <actor name="acc"  type="Inport"   dtype="i32" shape="64"/>
  <actor name="taps" type="Constant" dtype="i32" shape="64" value="3"/>
  <actor name="m"    type="Mul"/>
  <actor name="s"    type="Add"/>
  <actor name="y"    type="Outport"/>
  <connect from="x"    to="m:0"/>
  <connect from="taps" to="m:1"/>
  <connect from="m"    to="s:0"/>
  <connect from="acc"  to="s:1"/>
  <connect from="s"    to="y"/>
</model>)");
  }

  TempDir dir_;
  std::string model_path_;
};

TEST_F(CliFixture, NoArgsPrintsUsage) {
  CliResult r = run_cli("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST_F(CliFixture, UnknownCommandPrintsUsage) {
  CliResult r = run_cli("frobnicate x.xml");
  EXPECT_EQ(r.exit_code, 2);
}

TEST_F(CliFixture, IsaListsBuiltins) {
  CliResult r = run_cli("isa");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("neon"), std::string::npos);
  EXPECT_NE(r.output.find("avx2"), std::string::npos);
  EXPECT_NE(r.output.find("256-bit"), std::string::npos);
  // The sve row carries its traits and every table gets a coverage line.
  EXPECT_NE(r.output.find("sve"), std::string::npos);
  EXPECT_NE(r.output.find("(scalable)"), std::string::npos);
  EXPECT_NE(r.output.find("(simulated)"), std::string::npos);
  EXPECT_NE(r.output.find("op coverage:"), std::string::npos);
  EXPECT_NE(r.output.find("i32 16/16"), std::string::npos);
}

TEST_F(CliFixture, IsaDumpsTableText) {
  CliResult r = run_cli("isa sse");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("isa sse"), std::string::npos);
  EXPECT_NE(r.output.find("_mm_add_epi32"), std::string::npos);
}

TEST_F(CliFixture, GenerateEmitsFusedSimd) {
  const std::string out = (dir_.path() / "gen.c").string();
  CliResult r = run_cli("generate " + model_path_ + " --isa neon --out " + out);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("vmlaq_s32"), std::string::npos);
  const std::string source = read_file(out);
  EXPECT_NE(source.find("void cli_fir_step"), std::string::npos);
  EXPECT_NE(source.find("vmlaq_s32"), std::string::npos);
}

TEST_F(CliFixture, GenerateToStdout) {
  CliResult r = run_cli("generate " + model_path_ + " --isa neon_sim");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("cli_fir_init"), std::string::npos);
}

TEST_F(CliFixture, GenerateWithBaselineTools) {
  CliResult df = run_cli("generate " + model_path_ + " --tool dfsynth");
  EXPECT_EQ(df.exit_code, 0);
  EXPECT_EQ(df.output.find("vmlaq"), std::string::npos);
  CliResult sc = run_cli("generate " + model_path_ +
                         " --tool simulink --scattered --isa sse");
  EXPECT_EQ(sc.exit_code, 0);
  EXPECT_NE(sc.output.find("mulld"), std::string::npos);
}

TEST_F(CliFixture, GenerateRejectsUnknownTool) {
  CliResult r = run_cli("generate " + model_path_ + " --tool gcc");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("unknown tool"), std::string::npos);
}

TEST_F(CliFixture, GenerateWithThresholdFallsBackToScalar) {
  CliResult r = run_cli("generate " + model_path_ +
                        " --isa neon --threshold 5");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output.find("vmlaq_s32"), std::string::npos);
}

TEST_F(CliFixture, HistoryFileIsCreatedAndReused) {
  // The FFT forces Algorithm 1 to run and persist its selection.
  const std::string fft_model = (dir_.path() / "fft.xml").string();
  write_file(fft_model, R"(
<model name="cli_fft">
  <actor name="x" type="Inport" dtype="c64" shape="256"/>
  <actor name="f" type="FFT"/>
  <actor name="y" type="Outport"/>
  <connect from="x" to="f"/>
  <connect from="f" to="y"/>
</model>)");
  const std::string hist = (dir_.path() / "hist.txt").string();
  CliResult first =
      run_cli("generate " + fft_model + " --history " + hist + " --out " +
              (dir_.path() / "a.c").string());
  EXPECT_EQ(first.exit_code, 0);
  const std::string saved = read_file(hist);
  EXPECT_NE(saved.find("FFT c64 256 -> "), std::string::npos);
  CliResult second =
      run_cli("generate " + fft_model + " --history " + hist + " --out " +
              (dir_.path() / "b.c").string());
  EXPECT_EQ(second.exit_code, 0);
}

TEST_F(CliFixture, InspectShowsClassificationAndRegions) {
  CliResult r = run_cli("inspect " + model_path_);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("[batch]"), std::string::npos);
  EXPECT_NE(r.output.find("[source]"), std::string::npos);
  EXPECT_NE(r.output.find("batch regions"), std::string::npos);
  EXPECT_NE(r.output.find("Mul("), std::string::npos);
}

TEST_F(CliFixture, VerifyPassesForAllTools) {
  for (const char* tool : {"hcg", "simulink", "dfsynth"}) {
    CliResult r = run_cli("verify " + model_path_ + " --tool " + tool +
                          " --isa neon_sim");
    EXPECT_EQ(r.exit_code, 0) << tool << "\n" << r.output;
    EXPECT_NE(r.output.find("VERIFY OK"), std::string::npos) << tool;
  }
}

TEST_F(CliFixture, VerifyWithExternalIsaFile) {
  // Dump the built-in sse table to a file and load it back via --isa.
  const std::string isa_path = (dir_.path() / "my.isa").string();
  CliResult dump = run_cli("isa sse");
  ASSERT_EQ(dump.exit_code, 0);
  write_file(isa_path, dump.output);
  CliResult r = run_cli("verify " + model_path_ + " --isa " + isa_path);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("VERIFY OK"), std::string::npos);
}

TEST_F(CliFixture, BenchComparesAllThreeTools) {
  CliResult r = run_cli("bench " + model_path_ + " --isa neon_sim");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("simulink"), std::string::npos);
  EXPECT_NE(r.output.find("dfsynth"), std::string::npos);
  EXPECT_NE(r.output.find("hcg"), std::string::npos);
  EXPECT_NE(r.output.find("vmlaq_s32"), std::string::npos);
}

TEST_F(CliFixture, MissingModelFileFails) {
  CliResult r = run_cli("generate /nonexistent/model.xml");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("hcgc:"), std::string::npos);
}

TEST_F(CliFixture, GenerateWithoutSubcommand) {
  // `hcgc <model>` and `hcgc --flag ... <model>` default to generate.
  CliResult r = run_cli(model_path_ + " --isa neon_sim");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("cli_fir_init"), std::string::npos);
  CliResult flags_first = run_cli("--tool dfsynth " + model_path_);
  EXPECT_EQ(flags_first.exit_code, 0) << flags_first.output;
  EXPECT_NE(flags_first.output.find("cli_fir_init"), std::string::npos);
}

TEST_F(CliFixture, GenerateWritesReportAndTrace) {
  const std::string report = (dir_.path() / "r.json").string();
  const std::string trace = (dir_.path() / "t.json").string();
  CliResult r = run_cli("generate " + model_path_ +
                        " --isa neon_sim --out " +
                        (dir_.path() / "gen.c").string() + " --report " +
                        report + " --trace " + trace);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("history:"), std::string::npos);

  const std::string report_text = read_file(report);
  ASSERT_TRUE(obs::json_valid(report_text)) << report_text;
  obs::JsonValue doc = obs::json_parse(report_text);
  EXPECT_EQ(doc.at("schema").string, "hcg-report-v1");
  EXPECT_EQ(doc.at("model").string, "cli_fir");
  EXPECT_FALSE(doc.at("phases").array.empty());
  EXPECT_EQ(doc.at("phases").array[0].at("name").string, "model.load");
  ASSERT_FALSE(doc.at("regions").array.empty());
  const obs::JsonValue& region = doc.at("regions").array[0];
  EXPECT_TRUE(region.at("used_simd").boolean);
  EXPECT_FALSE(region.at("instructions").array.empty());

  const std::string trace_text = read_file(trace);
  ASSERT_TRUE(obs::json_valid(trace_text)) << trace_text;
  obs::JsonValue events = obs::json_parse(trace_text);
  ASSERT_TRUE(events.is_array());
#ifndef HCG_DISABLE_TRACING
  ASSERT_FALSE(events.array.empty());
  bool saw_emit = false;
  for (const obs::JsonValue& event : events.array) {
    EXPECT_EQ(event.at("ph").string, "X");
    EXPECT_NE(event.find("ts"), nullptr);
    EXPECT_NE(event.find("dur"), nullptr);
    if (event.at("name").string == "codegen.emit") saw_emit = true;
  }
  EXPECT_TRUE(saw_emit);
#endif
}

TEST_F(CliFixture, DumpCgirRoundTripsThroughParse) {
  const std::string dump_path = (dir_.path() / "unit.cgir").string();
  CliResult r = run_cli("generate " + model_path_ +
                        " --isa neon_sim --dump-cgir --out " + dump_path);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  const std::string dumped = read_file(dump_path);
  EXPECT_EQ(dumped.rfind("cgir-v1", 0), 0u) << dumped.substr(0, 80);

  // The dump is the emitter's own serialization: parsing it back and
  // re-printing must reproduce exactly what `generate` without the flag
  // writes.
  const std::string c_path = (dir_.path() / "unit.c").string();
  CliResult plain = run_cli("generate " + model_path_ +
                            " --isa neon_sim --out " + c_path);
  ASSERT_EQ(plain.exit_code, 0) << plain.output;
  const cgir::TranslationUnit tu = cgir::parse_dump(dumped);
  EXPECT_EQ(cgir::print(tu), read_file(c_path));
  EXPECT_EQ(cgir::dump(tu), dumped);
}

TEST_F(CliFixture, OptLevelFlagsAreAcceptedAndEquivalentHere) {
  // cli_fir is a single fused region with no intermediate buffers, so -O1
  // has nothing to optimize and the output must match -O0 byte for byte.
  const std::string o0 = (dir_.path() / "o0.c").string();
  const std::string o1 = (dir_.path() / "o1.c").string();
  CliResult r0 = run_cli("generate " + model_path_ +
                         " --isa neon_sim -O0 --out " + o0);
  CliResult r1 = run_cli("generate " + model_path_ +
                         " --isa neon_sim -O1 --out " + o1);
  ASSERT_EQ(r0.exit_code, 0) << r0.output;
  ASSERT_EQ(r1.exit_code, 0) << r1.output;
  EXPECT_EQ(read_file(o0), read_file(o1));

  // Bad flags are usage errors (exit 2, docs/ROBUSTNESS.md exit-code table).
  CliResult bad = run_cli("generate " + model_path_ + " -O7");
  EXPECT_EQ(bad.exit_code, 2);
  EXPECT_NE(bad.output.find("unknown option"), std::string::npos);
}

TEST_F(CliFixture, O2AcceptedAndOptimizes) {
  // cli_fir's i8 sibling with a Mul the NEON table cannot map: the scalar
  // loop between the vector regions strip-mines and fuses at -O2.
  const std::string mixed = (dir_.path() / "mixed.xml").string();
  write_file(mixed, R"(
<model name="cli_mixed">
  <actor name="a" type="Inport" dtype="i8" shape="37"/>
  <actor name="b" type="Inport" dtype="i8" shape="37"/>
  <actor name="s" type="Add"/>
  <actor name="m" type="Mul"/>
  <actor name="d" type="Sub"/>
  <actor name="y" type="Outport"/>
  <connect from="a" to="s:0"/>
  <connect from="b" to="s:1"/>
  <connect from="s" to="m:0"/>
  <connect from="b" to="m:1"/>
  <connect from="m" to="d:0"/>
  <connect from="a" to="d:1"/>
  <connect from="d" to="y"/>
</model>)");
  const std::string out = (dir_.path() / "o2.c").string();
  const std::string report = (dir_.path() / "o2.json").string();
  CliResult r = run_cli("generate " + mixed + " --isa neon_sim -O2 --out " +
                        out + " --report " + report);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(read_file(out).find("memcpy(ln0_"), std::string::npos);

  obs::JsonValue doc = obs::json_parse(read_file(report));
  const obs::JsonValue& opt = doc.at("codegen");
  EXPECT_EQ(opt.at("opt_level").number, 2);
  EXPECT_GE(opt.at("fusion").at("cross_scale_fused").number, 1);

  // The -O2 remarks ride along in the report diagnostics.
  bool saw_408 = false;
  for (const obs::JsonValue& diag : doc.at("diagnostics").array) {
    if (diag.at("code").string == "HCG408") saw_408 = true;
  }
  EXPECT_TRUE(saw_408) << read_file(report);
}

TEST_F(CliFixture, DumpCgirAfterSnapshotsNamedPass) {
  const std::string dump = (dir_.path() / "after.cgir").string();
  CliResult r = run_cli("generate " + model_path_ +
                        " --isa neon_sim -O2 --dump-cgir-after=fuse_loops"
                        " --out " + dump);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(read_file(dump).rfind("cgir-v1", 0), 0u);

  // Unknown pass names are usage errors; passes that exist but never ran at
  // the chosen -O level are reported as real errors.
  CliResult bad = run_cli("generate " + model_path_ +
                          " --isa neon_sim --dump-cgir-after=frobnicate");
  EXPECT_EQ(bad.exit_code, 2);
  CliResult not_run = run_cli("generate " + model_path_ +
                              " --isa neon_sim -O0"
                              " --dump-cgir-after=coalesce_layout");
  EXPECT_EQ(not_run.exit_code, 1);
  EXPECT_NE(not_run.output.find("did not run"), std::string::npos);
}

TEST_F(CliFixture, TileElemsValidatesWidth) {
  CliResult bad = run_cli("generate " + model_path_ +
                          " --isa neon_sim -O2 --tile-elems 1");
  EXPECT_EQ(bad.exit_code, 2);
  CliResult ok = run_cli("generate " + model_path_ +
                         " --isa neon_sim -O2 --tile-elems 8 --out " +
                         (dir_.path() / "t.c").string());
  EXPECT_EQ(ok.exit_code, 0) << ok.output;
}

TEST_F(CliFixture, TraceSummaryGoesToStderr) {
#ifdef HCG_DISABLE_TRACING
  GTEST_SKIP() << "tracing compiled out";
#endif
  CliResult r = run_cli("generate " + model_path_ + " --isa neon_sim --out " +
                        (dir_.path() / "gen.c").string() + " --trace summary");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("codegen.emit"), std::string::npos);
}

}  // namespace
}  // namespace hcg
