// Property-based end-to-end tests: randomly generated batch dataflow models
// are pushed through every generator, compiled, executed, and compared
// against the interpreter oracle.  This is the strongest invariant in the
// suite: for ANY model the pipeline accepts, generated code must compute
// exactly what the reference semantics compute.
#include <gtest/gtest.h>

#include "actors/resolve.hpp"
#include "benchmodels/benchmodels.hpp"
#include "codegen/generator.hpp"
#include "graph/regions.hpp"
#include "isa/builtin.hpp"
#include "model/builder.hpp"
#include "support/rng.hpp"
#include "synth/batch.hpp"
#include "toolchain/compiled_model.hpp"
#include "vm/interpreter.hpp"

namespace hcg {
namespace {

/// Generates a random DAG of integer batch actors over i32[len]: binary and
/// unary ops, shifts, gains, plus occasional same-width casts.  Inputs are
/// drawn from already-produced signals so fan-out and diamonds occur.
Model random_batch_model(std::uint64_t seed, int len, int actor_count) {
  Rng rng(seed);
  ModelBuilder b("rnd" + std::to_string(seed));
  std::vector<PortRef> int_signals;   // i32 signals
  std::vector<PortRef> float_signals; // f32 signals

  int_signals.push_back(b.inport("x0", DataType::kInt32, Shape({len})));
  int_signals.push_back(b.inport("x1", DataType::kInt32, Shape({len})));
  float_signals.push_back(b.inport("f0", DataType::kFloat32, Shape({len})));

  // Abd is exercised by the deterministic tests with bounded inputs; under
  // full wraparound its x86 lowering (abs of wrapped difference) legitimately
  // differs from the scalar conditional, so it stays out of the random pool.
  const char* int_binary[] = {"Add", "Sub", "Mul", "Min",
                              "Max", "BitAnd", "BitOr", "BitXor"};
  const char* int_unary[] = {"Abs", "BitNot"};
  const char* float_binary[] = {"Add", "Sub", "Mul", "Min", "Max"};


  auto pick = [&rng](auto& pool) -> PortRef& {
    return pool[static_cast<size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
  };

  for (int i = 0; i < actor_count; ++i) {
    const std::string name = "n" + std::to_string(i);
    const int kind = static_cast<int>(rng.uniform_int(0, 9));
    if (kind < 4) {  // integer binary
      const char* type = int_binary[rng.uniform_int(0, 7)];
      int_signals.push_back(
          b.actor(name, type, {pick(int_signals), pick(int_signals)}));
    } else if (kind < 5) {  // integer unary
      const char* type = int_unary[rng.uniform_int(0, 1)];
      int_signals.push_back(b.actor(name, type, {pick(int_signals)}));
    } else if (kind < 6) {  // shift
      // Amounts 2..4: a shift of exactly 1 after an Add fuses into a halving
      // add, whose widened intermediate legitimately diverges from wrapped
      // scalar arithmetic once upstream multiplies have overflowed.  The
      // halving-add path is covered by the bounded Figure-4 tests.
      const char* type = rng.uniform_int(0, 1) ? "Shr" : "Shl";
      const std::string amount = std::to_string(rng.uniform_int(2, 4));
      int_signals.push_back(
          b.actor(name, type, {pick(int_signals)}, {{"amount", amount}}));
    } else if (kind < 7) {  // gain on floats
      float_signals.push_back(
          b.actor(name, "Gain", {pick(float_signals)}, {{"gain", "0.5"}}));
    } else if (kind < 9) {  // float binary
      const char* type = float_binary[rng.uniform_int(0, 4)];
      float_signals.push_back(
          b.actor(name, type, {pick(float_signals), pick(float_signals)}));
    } else {  // same-width cast int -> float
      float_signals.push_back(
          b.actor(name, "Cast", {pick(int_signals)}, {{"to", "f32"}}));
    }
  }

  b.outport("yi", int_signals.back());
  b.outport("yf", float_signals.back());
  return b.take();
}

/// Bounded integer workload so shifts/multiplies stay in range across ops.
std::vector<Tensor> bounded_workload(const Model& m, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> inputs;
  for (ActorId id : m.inports()) {
    const PortSpec& spec = m.actor(id).output(0);
    Tensor t(spec.type, spec.shape);
    for (int i = 0; i < t.elements(); ++i) {
      if (spec.type == DataType::kInt32) {
        t.as<std::int32_t>()[i] =
            static_cast<std::int32_t>(rng.uniform_int(-1000, 1000));
      } else {
        t.as<float>()[i] = static_cast<float>(rng.uniform_real(-2.0, 2.0));
      }
    }
    inputs.push_back(std::move(t));
  }
  return inputs;
}

class RandomModels : public ::testing::TestWithParam<int> {};

TEST_P(RandomModels, HcgNeonSimMatchesOracleExactlyOnIntegers) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const int len = 1 + static_cast<int>(seed % 37) * 3;  // 1..109, odd offsets
  Model m = resolved(random_batch_model(seed, len, 12));

  auto inputs = bounded_workload(m, seed * 31 + 1);
  Interpreter oracle(m);
  oracle.init();
  auto expected = oracle.step(inputs);

  auto gen = codegen::make_hcg_generator(isa::builtin("neon_sim"));
  codegen::GeneratedCode code = gen->generate(m);
  toolchain::CompiledModel compiled(code);
  compiled.init();
  auto got = compiled.step_tensors(m, inputs);

  ASSERT_EQ(got.size(), expected.size());
  // Integer output: bit exact.  Float output: tiny tolerance (fma effects).
  EXPECT_EQ(got[0].max_abs_difference(expected[0]), 0.0) << code.source;
  EXPECT_LT(got[1].max_abs_difference(expected[1]), 1e-4);
}

TEST_P(RandomModels, AllToolsAgreeWithEachOther) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) + 1000;
  const int len = 16 + static_cast<int>(seed % 5);
  Model m = resolved(random_batch_model(seed, len, 8));
  auto inputs = bounded_workload(m, seed);

  auto hcg = codegen::make_hcg_generator(isa::builtin("sse"));
  auto df = codegen::make_dfsynth_generator();

  toolchain::CompiledModel a(hcg->generate(m));
  toolchain::CompiledModel b(df->generate(m));
  a.init();
  b.init();
  auto ra = a.step_tensors(m, inputs);
  auto rb = b.step_tensors(m, inputs);
  ASSERT_EQ(ra.size(), rb.size());
  EXPECT_EQ(ra[0].max_abs_difference(rb[0]), 0.0);
  EXPECT_LT(ra[1].max_abs_difference(rb[1]), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomModels, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Structural properties of Algorithm 2 on random graphs (no compilation)
// ---------------------------------------------------------------------------

class RandomGraphs : public ::testing::TestWithParam<int> {};

TEST_P(RandomGraphs, BatchSynthesisCoversEveryRegionNode) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) + 500;
  Model m = resolved(random_batch_model(seed, 64, 15));
  const isa::VectorIsa& table = isa::builtin("neon");
  auto regions = find_batch_regions(m, table);
  for (const BatchRegion& region : regions) {
    synth::BatchSynthResult result = synth::synthesize_batch(
        m, region, table,
        [&m](ActorId id, int) { return "b_" + m.actor(id).name(); });
    ASSERT_TRUE(result.used_simd);
    // Every node mapped: the sum of pattern sizes equals the node count.
    int covered = 0;
    for (const std::string& name : result.instructions_used) {
      bool compound = false;
      for (const isa::Instruction& ins : table.instructions) {
        if (ins.name == name && ins.node_count() == 2) compound = true;
      }
      covered += (name == "cvt") ? 1 : (compound ? 2 : 1);
    }
    EXPECT_EQ(covered, region.graph.node_count());
  }
}

TEST_P(RandomGraphs, SubgraphEnumerationInvariants) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) + 900;
  Model m = resolved(random_batch_model(seed, 32, 10));
  auto regions = find_batch_regions(m, AllOpsSupport());
  for (const BatchRegion& region : regions) {
    const Dataflow& g = region.graph;
    std::vector<bool> mapped(static_cast<size_t>(g.node_count()), false);
    const int seed_node = g.top_left_node(mapped);
    if (seed_node < 0) continue;
    for (const auto& s : g.extend_subgraphs(seed_node, mapped, 3)) {
      // Contains the seed, convex, within size bound; when a unique sink
      // exists it sits last.
      EXPECT_NE(std::find(s.begin(), s.end(), seed_node), s.end());
      EXPECT_LE(s.size(), 3u);
      const int sink = g.sink_of(s);
      EXPECT_TRUE(sink == s.back() || sink == -1);
      EXPECT_TRUE(g.is_convex(s));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphs, ::testing::Range(1, 13));

}  // namespace
}  // namespace hcg
