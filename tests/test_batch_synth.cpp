// Unit tests for Algorithm 2 (batch code synthesis): instruction selection
// on the paper's Figure 4 example, loop/remainder structure, fallbacks and
// the SIMD threshold.
#include <gtest/gtest.h>

#include "actors/resolve.hpp"
#include "benchmodels/benchmodels.hpp"
#include "graph/regions.hpp"
#include "isa/builtin.hpp"
#include "synth/batch.hpp"

namespace hcg::synth {
namespace {

struct Synthesized {
  Model model;
  BatchSynthResult result;
};

Synthesized run_fig4(int n, const isa::VectorIsa& table,
                     BatchOptions options = {}) {
  Model model = resolved(benchmodels::paper_fig4_model(n));
  auto regions = find_batch_regions(model, table);
  if (regions.empty()) {
    return {std::move(model), BatchSynthResult{}};
  }
  BatchSynthResult result = synthesize_batch(
      model, regions.at(0), table,
      [&model](ActorId id, int) {
        return "buf_" + model.actor(id).name();
      },
      options);
  return {std::move(model), std::move(result)};
}

// ---------------------------------------------------------------------------
// The paper's worked example (Listing 1)
// ---------------------------------------------------------------------------

TEST(BatchSynth, Fig4SelectsExactlyThePaperInstructions) {
  auto [model, result] = run_fig4(4, isa::builtin("neon"));
  ASSERT_TRUE(result.used_simd);
  EXPECT_EQ(result.instructions_used,
            (std::vector<std::string>{"vsubq_s32", "vhaddq_s32", "vmlaq_s32"}));
}

TEST(BatchSynth, Fig4EmitsListing1CodeShape) {
  auto [model, result] = run_fig4(4, isa::builtin("neon"));
  ASSERT_TRUE(result.used_simd);
  const std::string& code = result.code;
  // Loads for the four inputs.
  EXPECT_NE(code.find("vld1q_s32(&buf_a[i])"), std::string::npos);
  EXPECT_NE(code.find("vld1q_s32(&buf_b[i])"), std::string::npos);
  EXPECT_NE(code.find("vld1q_s32(&buf_c[i])"), std::string::npos);
  EXPECT_NE(code.find("vld1q_s32(&buf_d[i])"), std::string::npos);
  // The three calculations of Listing 1.
  EXPECT_NE(code.find("int32x4_t Sub_b = vsubq_s32(b_b, c_b);"),
            std::string::npos);
  EXPECT_NE(code.find("int32x4_t Shr_b = vhaddq_s32("), std::string::npos);
  EXPECT_NE(code.find("vmlaq_s32(Sub_b, Sub_b, d_b)"), std::string::npos);
  // Stores for the two outputs.
  EXPECT_NE(code.find("vst1q_s32(&buf_Shr[i], Shr_b);"), std::string::npos);
  EXPECT_NE(code.find("vst1q_s32(&buf_Add2[i], Add2_b);"), std::string::npos);
}

TEST(BatchSynth, Fig4WorksOnEveryBuiltinIsa) {
  for (const char* name : {"neon", "neon_sim", "sse", "avx2"}) {
    auto [model, result] = run_fig4(64, isa::builtin(name));
    ASSERT_TRUE(result.used_simd) << name;
    // Three instructions regardless of architecture: sub, hadd, mla.
    EXPECT_EQ(result.instructions_used.size(), 3u) << name;
  }
}

// ---------------------------------------------------------------------------
// Batch size / count / offset (Algorithm 2 lines 1-8, 24-26)
// ---------------------------------------------------------------------------

TEST(BatchSynth, BatchGeometryExactMultiple) {
  auto [model, result] = run_fig4(16, isa::builtin("neon"));
  EXPECT_TRUE(result.used_simd);
  EXPECT_EQ(result.batch_size, 4);
  EXPECT_EQ(result.batch_count, 4);
  EXPECT_EQ(result.offset, 0);
  EXPECT_NE(result.code.find("for (int i = 0; i < 16; i += 4)"),
            std::string::npos);
  // No scalar remainder.
  EXPECT_EQ(result.code.find("for (int i = 0; i < 0"), std::string::npos);
}

TEST(BatchSynth, RemainderGoesInFrontOfTheLoop) {
  auto [model, result] = run_fig4(19, isa::builtin("neon"));
  ASSERT_TRUE(result.used_simd);
  EXPECT_EQ(result.offset, 3);
  const size_t remainder_pos = result.code.find("for (int i = 0; i < 3; ++i)");
  const size_t loop_pos = result.code.find("for (int i = 3; i < 19; i += 4)");
  ASSERT_NE(remainder_pos, std::string::npos);
  ASSERT_NE(loop_pos, std::string::npos);
  EXPECT_LT(remainder_pos, loop_pos);  // "added to the front"
  // Scalar remainder computes the same ops.
  EXPECT_NE(result.code.find(">> 1"), std::string::npos);
}

TEST(BatchSynth, SingleBatchEmitsStraightLineBlock) {
  auto [model, result] = run_fig4(4, isa::builtin("neon"));
  ASSERT_TRUE(result.used_simd);
  EXPECT_EQ(result.batch_count, 1);
  // No loop: a block with a fixed index.
  EXPECT_EQ(result.code.find("i += 4"), std::string::npos);
  EXPECT_NE(result.code.find("const int i = 0;"), std::string::npos);
}

TEST(BatchSynth, TooShortForVectorFallsBack) {
  // Length 3 < 4 lanes: BatchCount < 1 -> conventionalTranslate.
  auto [model, result] = run_fig4(3, isa::builtin("neon"));
  EXPECT_FALSE(result.used_simd);
  EXPECT_TRUE(result.code.empty());
}

TEST(BatchSynth, Avx2UsesEightLanesForI32) {
  auto [model, result] = run_fig4(24, isa::builtin("avx2"));
  ASSERT_TRUE(result.used_simd);
  EXPECT_EQ(result.batch_size, 8);
  EXPECT_EQ(result.batch_count, 3);
}

TEST(BatchSynth, ThresholdDisablesSmallRegions) {
  BatchOptions options;
  options.min_nodes_for_simd = 6;  // Figure 4 has 5 nodes
  auto [model, result] = run_fig4(64, isa::builtin("neon"), options);
  EXPECT_FALSE(result.used_simd);
  options.min_nodes_for_simd = 5;
  auto [model2, result2] = run_fig4(64, isa::builtin("neon"), options);
  EXPECT_TRUE(result2.used_simd);
}

// ---------------------------------------------------------------------------
// Scalar-operand, conversion and basic-only synthesis
// ---------------------------------------------------------------------------

TEST(BatchSynth, GainUsesMulByScalarInstruction) {
  Model model = resolved(benchmodels::lowpass_model(32));
  auto regions = find_batch_regions(model, isa::builtin("neon"));
  ASSERT_EQ(regions.size(), 1u);
  BatchSynthResult result = synthesize_batch(
      model, regions[0], isa::builtin("neon"),
      [&model](ActorId id, int) { return model.actor(id).name(); });
  ASSERT_TRUE(result.used_simd);
  bool has_mul_n = false;
  for (const std::string& name : result.instructions_used) {
    if (name == "vmulq_n_f32") has_mul_n = true;
  }
  EXPECT_TRUE(has_mul_n);
  EXPECT_NE(result.code.find("vmulq_n_f32(a_b, 0.5"), std::string::npos);
}

TEST(BatchSynth, CastEmitsCvtInstruction) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kFloat32, Shape({16}));
  PortRef a = b.actor("a", "Abs", {x});
  PortRef c = b.actor("c", "Cast", {a}, {{"to", "i32"}});
  PortRef d = b.actor("d", "BitNot", {c});
  b.outport("o", d);
  Model model = resolved(b.take());
  auto regions = find_batch_regions(model, isa::builtin("neon"));
  ASSERT_EQ(regions.size(), 1u);
  BatchSynthResult result = synthesize_batch(
      model, regions[0], isa::builtin("neon"),
      [&model](ActorId id, int) { return model.actor(id).name(); });
  ASSERT_TRUE(result.used_simd);
  EXPECT_NE(result.code.find("vcvtq_s32_f32"), std::string::npos);
  // The cvt result feeds the integer bit-not.
  EXPECT_NE(result.code.find("vmvnq_s32(c_b)"), std::string::npos);
}

TEST(BatchSynth, FirFusesIntoSingleMla) {
  Model model = resolved(benchmodels::fir_model(64));
  auto regions = find_batch_regions(model, isa::builtin("neon"));
  ASSERT_EQ(regions.size(), 1u);
  BatchSynthResult result = synthesize_batch(
      model, regions[0], isa::builtin("neon"),
      [&model](ActorId id, int) { return model.actor(id).name(); });
  ASSERT_TRUE(result.used_simd);
  EXPECT_EQ(result.instructions_used, std::vector<std::string>{"vmlaq_s32"});
}

TEST(BatchSynth, BasicIsaStillCoversGraphWithSingleOps) {
  // Strip multi-node instructions: FIR maps to mul + add instead of mla.
  isa::VectorIsa basic = isa::builtin("neon");
  std::vector<isa::Instruction> singles;
  for (const isa::Instruction& ins : basic.instructions) {
    if (ins.node_count() == 1) singles.push_back(ins);
  }
  basic.instructions = std::move(singles);

  Model model = resolved(benchmodels::fir_model(64));
  auto regions = find_batch_regions(model, basic);
  ASSERT_EQ(regions.size(), 1u);
  BatchSynthResult result = synthesize_batch(
      model, regions[0], basic,
      [&model](ActorId id, int) { return model.actor(id).name(); });
  ASSERT_TRUE(result.used_simd);
  EXPECT_EQ(result.instructions_used,
            (std::vector<std::string>{"vmulq_s32", "vaddq_s32"}));
}

TEST(BatchSynth, PaperFigure2ModelNeedsOnlyTwoOperations) {
  // Figure 2: y[i] = 1 / (a[i]*b[i] + c[i]) over 4-wide floats.  Simulink
  // Coder emits 4 multiplications, 4 additions and 4 reciprocals; the paper
  // notes that with SIMD "only two operations are required": a fused
  // multiply-add and a vector reciprocal.
  ModelBuilder b("fig2");
  PortRef a = b.inport("a", DataType::kFloat32, Shape({4}));
  PortRef bb = b.inport("b", DataType::kFloat32, Shape({4}));
  PortRef c = b.inport("c", DataType::kFloat32, Shape({4}));
  PortRef mul = b.actor("mul", "Mul", {a, bb});
  PortRef add = b.actor("add", "Add", {mul, c});
  PortRef recp = b.actor("recp", "Recp", {add});
  b.outport("y", recp);
  Model model = resolved(b.take());
  auto regions = find_batch_regions(model, isa::builtin("neon"));
  ASSERT_EQ(regions.size(), 1u);
  BatchSynthResult result = synthesize_batch(
      model, regions[0], isa::builtin("neon"),
      [&model](ActorId id, int) { return model.actor(id).name(); });
  ASSERT_TRUE(result.used_simd);
  EXPECT_EQ(result.instructions_used,
            (std::vector<std::string>{"vmlaq_f32", "vrecpq_f32"}));
}

TEST(BatchSynth, SwitchMapsToVectorBitSelect) {
  ModelBuilder b("sw");
  PortRef a = b.inport("a", DataType::kFloat32, Shape({32}));
  PortRef alt = b.inport("alt", DataType::kFloat32, Shape({32}));
  PortRef ctrl = b.inport("ctrl", DataType::kFloat32, Shape({32}));
  PortRef sel = b.actor("sel", "Switch", {a, alt, ctrl});
  b.outport("y", sel);
  Model model = resolved(b.take());
  auto regions = find_batch_regions(model, isa::builtin("neon"));
  ASSERT_EQ(regions.size(), 1u);
  BatchSynthResult result = synthesize_batch(
      model, regions[0], isa::builtin("neon"),
      [&model](ActorId id, int) { return model.actor(id).name(); });
  ASSERT_TRUE(result.used_simd);
  EXPECT_EQ(result.instructions_used, std::vector<std::string>{"vbslq_f32"});
  EXPECT_NE(result.code.find("vbslq_f32(vcgtq_f32(ctrl_b"), std::string::npos);
}

TEST(BatchSynth, SwitchJoinsSurroundingRegion) {
  // Sub feeding one branch of a Switch fuses into the same region.
  ModelBuilder b("swr");
  PortRef x = b.inport("x", DataType::kInt32, Shape({64}));
  PortRef y = b.inport("y", DataType::kInt32, Shape({64}));
  PortRef ctrl = b.inport("ctrl", DataType::kInt32, Shape({64}));
  PortRef d = b.actor("d", "Sub", {x, y});
  PortRef sel = b.actor("sel", "Switch", {d, y, ctrl});
  b.outport("o", sel);
  Model model = resolved(b.take());
  auto regions = find_batch_regions(model, isa::builtin("neon"));
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].actors.size(), 2u);
  BatchSynthResult result = synthesize_batch(
      model, regions[0], isa::builtin("neon"),
      [&model](ActorId id, int) { return model.actor(id).name(); });
  ASSERT_TRUE(result.used_simd);
  EXPECT_EQ(result.instructions_used,
            (std::vector<std::string>{"vsubq_s32", "vbslq_s32"}));
}

TEST(BatchSynth, SwitchScalarRemainderUsesTernary) {
  ModelBuilder b("swrem");
  PortRef a = b.inport("a", DataType::kInt32, Shape({7}));  // 7 % 4 == 3
  PortRef alt = b.inport("alt", DataType::kInt32, Shape({7}));
  PortRef ctrl = b.inport("ctrl", DataType::kInt32, Shape({7}));
  PortRef sel = b.actor("sel", "Switch", {a, alt, ctrl});
  b.outport("y", sel);
  Model model = resolved(b.take());
  auto regions = find_batch_regions(model, isa::builtin("neon"));
  ASSERT_EQ(regions.size(), 1u);
  BatchSynthResult result = synthesize_batch(
      model, regions[0], isa::builtin("neon"),
      [&model](ActorId id, int) { return model.actor(id).name(); });
  ASSERT_TRUE(result.used_simd);
  EXPECT_EQ(result.offset, 3);
  EXPECT_NE(result.code.find("ctrl[i] > 0 ? a[i] : alt[i]"),
            std::string::npos);
}

TEST(BatchSynth, EveryNodeIsMappedExactlyOnce) {
  // The fused instruction count covers all 5 Figure-4 nodes: 1 + 2 + 2.
  auto [model, result] = run_fig4(32, isa::builtin("neon"));
  ASSERT_TRUE(result.used_simd);
  EXPECT_EQ(result.instructions_used.size(), 3u);
}

}  // namespace
}  // namespace hcg::synth
