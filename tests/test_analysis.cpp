// Static-analysis layer tests (docs/ANALYSIS.md): the diagnostic engine,
// one triggering input per stable code, the CGIR verifier (including the
// broken-pass fault-injection path), the model/graph linter, SARIF export,
// and the `hcgc lint` CLI contract over the example corpus.
//
// Regenerate tests/golden/fig4.sarif after an intentional diagnostic or
// SARIF change with:
//   HCG_UPDATE_GOLDEN=1 ./build/tests/hcg_integration_tests
//       --gtest_filter='*Sarif*'
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/linter.hpp"
#include "analysis/sarif.hpp"
#include "analysis/verifier.hpp"
#include "actors/resolve.hpp"
#include "benchmodels/benchmodels.hpp"
#include "cgir/passes.hpp"
#include "codegen/generator.hpp"
#include "isa/builtin.hpp"
#include "model/builder.hpp"
#include "support/error.hpp"
#include "support/faults.hpp"
#include "support/fileio.hpp"

namespace hcg {
namespace {

using analysis::Diagnostic;
using analysis::DiagnosticEngine;
using analysis::Severity;

std::vector<std::string> codes_of(const DiagnosticEngine& diags) {
  std::vector<std::string> out;
  for (const Diagnostic& diag : diags.diagnostics()) out.push_back(diag.code);
  return out;
}

bool has_code(const DiagnosticEngine& diags, const std::string& code) {
  const auto codes = codes_of(diags);
  return std::find(codes.begin(), codes.end(), code) != codes.end();
}

const Diagnostic& find_diag(const DiagnosticEngine& diags,
                            const std::string& code) {
  for (const Diagnostic& diag : diags.diagnostics()) {
    if (diag.code == code) return diag;
  }
  throw Error("test: no diagnostic with code " + code);
}

// ---- diagnostic engine ------------------------------------------------------

TEST(DiagnosticEngine, RuleTableIsSortedAndFindable) {
  const auto& rules = analysis::diagnostic_rules();
  ASSERT_FALSE(rules.empty());
  for (size_t i = 1; i < rules.size(); ++i) {
    EXPECT_LT(rules[i - 1].code, rules[i].code);
  }
  for (const auto& rule : rules) {
    const auto* found = analysis::find_rule(rule.code);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->name, rule.name);
  }
  EXPECT_EQ(analysis::find_rule("HCG999"), nullptr);
}

TEST(DiagnosticEngine, WerrorPromotesWarningsOnly) {
  DiagnosticEngine diags(/*werror=*/true);
  diags.warning("HCG104", "actor 'a'", "dead");
  diags.remark("HCG401", "region {a}", "short");
  diags.note("HCG400", "region {b}", "ok");
  EXPECT_TRUE(diags.has_errors());
  EXPECT_EQ(diags.count(Severity::kError), 1);
  EXPECT_EQ(diags.count(Severity::kWarning), 0);
  EXPECT_EQ(diags.count(Severity::kRemark), 1);
  EXPECT_EQ(diags.count(Severity::kNote), 1);
}

TEST(DiagnosticEngine, RenderAndSummary) {
  DiagnosticEngine diags;
  EXPECT_EQ(diags.summary(), "no findings");
  diags.error("HCG102", "actor 'm' (Mul)", "input port 1 has no incoming "
                                           "connection");
  const std::string text = diags.render("model.xml");
  EXPECT_NE(text.find("model.xml: actor 'm' (Mul): error HCG102:"),
            std::string::npos);
  EXPECT_EQ(diags.summary(), "1 error");
}

// ---- HCG1xx: structure ------------------------------------------------------

TEST(LintStructure, UnknownActorType_HCG101) {
  Model model("m");
  const ActorId id = model.add_actor("mystery", "Frobnicate");
  (void)id;
  DiagnosticEngine diags;
  analysis::lint_structure(model, diags);
  EXPECT_TRUE(has_code(diags, "HCG101"));
}

TEST(LintStructure, UnconnectedInput_HCG102) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kFloat32, Shape{8});
  b.model().add_actor("half", "Add");  // both inputs left unconnected
  b.outport("y", x);
  const Model model = b.take();
  DiagnosticEngine diags;
  analysis::lint_structure(model, diags);
  const auto codes = codes_of(diags);
  EXPECT_EQ(std::count(codes.begin(), codes.end(), "HCG102"), 2);
}

TEST(LintStructure, InvalidPort_HCG103) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kFloat32, Shape{8});
  PortRef a = b.actor("a", "Abs", {x});
  b.outport("y", a);
  Model model = b.take();
  // An Abs has exactly one input; port 3 is out of range.
  model.connect(model.actor_by_name("x").id(), 0,
                model.actor_by_name("a").id(), 3);
  DiagnosticEngine diags;
  analysis::lint_structure(model, diags);
  const Diagnostic& diag = find_diag(diags, "HCG103");
  EXPECT_NE(diag.location.find("connection 'x' -> 'a'"), std::string::npos);
  EXPECT_NE(diag.message.find("input port 3"), std::string::npos);
}

TEST(LintStructure, DeadActor_HCG104) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kFloat32, Shape{8});
  PortRef live = b.actor("live", "Abs", {x});
  b.actor("dead", "Sqrt", {x});
  b.outport("y", live);
  const Model model = b.take();
  DiagnosticEngine diags;
  analysis::lint_structure(model, diags);
  const Diagnostic& diag = find_diag(diags, "HCG104");
  EXPECT_EQ(diag.severity, Severity::kWarning);
  EXPECT_NE(diag.location.find("'dead'"), std::string::npos);
}

TEST(LintStructure, DelayFreeCycle_HCG105) {
  ModelBuilder b("m");
  b.inport("x", DataType::kFloat32, Shape{8});
  Model model = b.take();
  const ActorId a1 = model.add_actor("a1", "Add");
  const ActorId a2 = model.add_actor("a2", "Add");
  const ActorId y = model.add_actor("y", "Outport");
  model.connect(model.actor_by_name("x").id(), 0, a1, 0);
  model.connect(a2, 0, a1, 1);  // the back edge, with no UnitDelay
  model.connect(a1, 0, a2, 0);
  model.connect(model.actor_by_name("x").id(), 0, a2, 1);
  model.connect(a2, 0, y, 0);
  DiagnosticEngine diags;
  analysis::lint_structure(model, diags);
  const Diagnostic& diag = find_diag(diags, "HCG105");
  EXPECT_NE(diag.message.find("a1"), std::string::npos);
  EXPECT_NE(diag.message.find("a2"), std::string::npos);
}

TEST(LintStructure, DelayBrokenCycleIsClean) {
  // The same feedback loop through a UnitDelay is legal.
  ModelBuilder b("m");
  b.inport("x", DataType::kFloat32, Shape{8});
  Model model = b.take();
  const ActorId a1 = model.add_actor("a1", "Add");
  const ActorId d = model.add_actor("d", "UnitDelay");
  const ActorId y = model.add_actor("y", "Outport");
  model.connect(model.actor_by_name("x").id(), 0, a1, 0);
  model.connect(d, 0, a1, 1);
  model.connect(a1, 0, d, 0);
  model.connect(a1, 0, y, 0);
  DiagnosticEngine diags;
  analysis::lint_structure(model, diags);
  EXPECT_FALSE(has_code(diags, "HCG105"));
}

TEST(LintStructure, NoOutport_HCG106) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kFloat32, Shape{8});
  b.actor("a", "Abs", {x});
  const Model model = b.take();
  DiagnosticEngine diags;
  analysis::lint_structure(model, diags);
  EXPECT_TRUE(has_code(diags, "HCG106"));
  // With no Outport every actor is trivially unobserved; HCG104 stays quiet.
  EXPECT_FALSE(has_code(diags, "HCG104"));
}

// ---- HCG2xx: types ----------------------------------------------------------

TEST(LintResolve, WidthMismatch_HCG201) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kFloat32, Shape{64});
  PortRef w = b.inport("w", DataType::kFloat32, Shape{32});
  PortRef s = b.actor("s", "Add", {x, w});
  b.outport("y", s);
  Model model = b.take();
  DiagnosticEngine diags;
  EXPECT_FALSE(analysis::lint_resolve(model, diags));
  const Diagnostic& diag = find_diag(diags, "HCG201");
  EXPECT_NE(diag.location.find("actor 's' (Add)"), std::string::npos);
  EXPECT_NE(diag.message.find("operand mismatch"), std::string::npos);
}

TEST(LintResolve, DtypeMismatch_HCG202) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kFloat32, Shape{64});
  PortRef w = b.inport("w", DataType::kInt32, Shape{64});
  PortRef s = b.actor("s", "Mul", {x, w});
  b.outport("y", s);
  Model model = b.take();
  DiagnosticEngine diags;
  EXPECT_FALSE(analysis::lint_resolve(model, diags));
  EXPECT_TRUE(has_code(diags, "HCG202"));
}

TEST(LintResolve, InvalidActor_HCG203) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kFloat32, Shape{64});
  PortRef c = b.actor("c", "Cast", {x});  // missing the 'to' parameter
  b.outport("y", c);
  Model model = b.take();
  DiagnosticEngine diags;
  EXPECT_FALSE(analysis::lint_resolve(model, diags));
  const Diagnostic& diag = find_diag(diags, "HCG203");
  EXPECT_NE(diag.message.find("'to'"), std::string::npos);
}

TEST(LintResolve, ReportsEveryFailureNotJustTheFirst) {
  // resolve_model() throws at the first bad actor; the linter reaches both.
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kFloat32, Shape{64});
  PortRef w = b.inport("w", DataType::kInt32, Shape{64});
  PortRef bad1 = b.actor("bad1", "Mul", {x, w});
  PortRef bad2 = b.actor("bad2", "Cast", {x});
  b.outport("y1", bad1);
  b.outport("y2", bad2);
  Model model = b.take();
  DiagnosticEngine diags;
  EXPECT_FALSE(analysis::lint_resolve(model, diags));
  EXPECT_TRUE(has_code(diags, "HCG202"));
  EXPECT_TRUE(has_code(diags, "HCG203"));
}

TEST(LintResolve, CleanModelResolvesInPlace) {
  Model model = benchmodels::batch_chain_model(3, 64);
  DiagnosticEngine diags;
  EXPECT_TRUE(analysis::lint_resolve(model, diags));
  EXPECT_EQ(diags.diagnostics().size(), 0u);
  for (const Actor& actor : model.actors()) {
    EXPECT_TRUE(actor.is_resolved()) << actor.name();
  }
}

// ---- HCG3xx: cgir verifier --------------------------------------------------

/// A minimal well-formed unit: one buffer, one scalar loop writing it.
cgir::TranslationUnit valid_unit() {
  cgir::TranslationUnit tu;
  cgir::BufferDecl buf;
  buf.name = "sig";
  buf.ctype = "float";
  buf.components = 8;
  buf.elem_bytes = 4;
  tu.buffers.push_back(buf);
  tu.init.opener = "void m_init(void) {";
  tu.step.opener = "void m_step(...) {";
  cgir::Stmt loop;
  loop.kind = cgir::Stmt::Kind::kLoop;
  loop.begin = 0;
  loop.end = 8;
  cgir::Stmt write = cgir::Stmt::text_line("sig[i] = 1.0f;");
  write.accesses.push_back({"sig", /*write=*/true, /*elementwise=*/true});
  loop.body.push_back(write);
  tu.step.body.push_back(loop);
  return tu;
}

TEST(CgirVerifier, ValidUnitIsClean) {
  EXPECT_TRUE(analysis::verify_unit(valid_unit()).empty());
}

TEST(CgirVerifier, OutOfBounds_HCG301) {
  cgir::TranslationUnit tu = valid_unit();
  tu.step.body[0].end = 9;  // one past the 8-element buffer
  const auto diags = analysis::verify_unit(tu);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, "HCG301");
  EXPECT_NE(diags[0].message.find("exceeds its extent of 8"),
            std::string::npos);
}

TEST(CgirVerifier, DuplicateLocal_HCG302) {
  cgir::TranslationUnit tu = valid_unit();
  cgir::Stmt def = cgir::Stmt::text_line("float v = 0.0f;");
  def.defines = "v";
  tu.step.body[0].body.push_back(def);
  tu.step.body[0].body.push_back(def);
  const auto diags = analysis::verify_unit(tu);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, "HCG302");
}

TEST(CgirVerifier, PendingHandoffLoadIsTolerated) {
  // The one sanctioned HCG302 exception: after loop fusion a pure load may
  // redefine the producer's register to read a buffer stored earlier in the
  // same fused body (copy forwarding erases it next).
  cgir::TranslationUnit tu = valid_unit();
  cgir::BufferDecl tmp = tu.buffers[0];
  tmp.name = "tmp";
  tu.buffers.push_back(tmp);
  cgir::Stmt def = cgir::Stmt::text_line("float32x4_t v = vdupq_n_f32(0);");
  def.defines = "v";
  cgir::Stmt store = cgir::Stmt::text_line("vst1q_f32(&tmp[i], v);");
  store.is_store = true;
  store.stores_var = "v";
  store.accesses.push_back({"tmp", /*write=*/true, /*elementwise=*/true});
  cgir::Stmt load = cgir::Stmt::text_line("float32x4_t v = vld1q_f32(&tmp[i]);");
  load.defines = "v";
  load.is_load = true;
  load.accesses.push_back({"tmp", /*write=*/false, /*elementwise=*/true});
  auto& body = tu.step.body[0].body;
  body.push_back(def);
  body.push_back(store);
  body.push_back(load);
  EXPECT_TRUE(analysis::verify_unit(tu).empty());

  // Without the earlier store of tmp the same load is a real duplicate.
  body.erase(body.end() - 2);
  const auto diags = analysis::verify_unit(tu);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, "HCG302");
}

TEST(CgirVerifier, LoopCoverage_HCG303) {
  // A vector loop whose trip is not a multiple of its stride.
  cgir::TranslationUnit tu = valid_unit();
  tu.step.body[0].step = 4;
  tu.step.body[0].end = 6;
  tu.step.body[0].vector_loop = true;
  auto diags = analysis::verify_unit(tu);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, "HCG303");
  EXPECT_NE(diags[0].message.find("not a multiple"), std::string::npos);

  // An offset vector loop with no scalar remainder loop covering [0, begin).
  tu = valid_unit();
  tu.step.body[0].begin = 4;
  tu.step.body[0].step = 4;
  tu.step.body[0].vector_loop = true;
  diags = analysis::verify_unit(tu);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, "HCG303");
  EXPECT_NE(diags[0].message.find("no earlier scalar loop"),
            std::string::npos);

  // Adding the remainder loop [0,4) in front makes the pair legal.
  cgir::Stmt remainder;
  remainder.kind = cgir::Stmt::Kind::kLoop;
  remainder.begin = 0;
  remainder.end = 4;
  remainder.body.push_back(tu.step.body[0].body[0]);
  tu.step.body.insert(tu.step.body.begin(), remainder);
  EXPECT_TRUE(analysis::verify_unit(tu).empty());
}

TEST(CgirVerifier, UndefinedStoreSource_HCG304) {
  cgir::TranslationUnit tu = valid_unit();
  cgir::Stmt store = cgir::Stmt::text_line("sig[i] = ghost;");
  store.is_store = true;
  store.stores_var = "ghost";
  store.accesses.push_back({"sig", /*write=*/true, /*elementwise=*/true});
  tu.step.body[0].body.push_back(store);
  const auto diags = analysis::verify_unit(tu);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, "HCG304");
}

TEST(CgirVerifier, UnknownBuffer_HCG305) {
  cgir::TranslationUnit tu = valid_unit();
  cgir::Stmt write = cgir::Stmt::text_line("ghost[i] = 1.0f;");
  write.accesses.push_back({"ghost", /*write=*/true, /*elementwise=*/true});
  tu.step.body[0].body.push_back(write);
  const auto diags = analysis::verify_unit(tu);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, "HCG305");
}

TEST(CgirVerifier, LocalDefinedEarlierIsNotHCG305) {
  cgir::TranslationUnit tu = valid_unit();
  cgir::Stmt def = cgir::Stmt::text_line("float acc = 0.0f;");
  def.defines = "acc";
  cgir::Stmt use = cgir::Stmt::text_line("sig[i] = acc;");
  use.accesses.push_back({"acc", /*write=*/false, /*elementwise=*/false});
  use.accesses.push_back({"sig", /*write=*/true, /*elementwise=*/true});
  tu.step.body[0].body.push_back(def);
  tu.step.body[0].body.push_back(use);
  EXPECT_TRUE(analysis::verify_unit(tu).empty());
}

TEST(CgirVerifier, ConstWrite_HCG306) {
  cgir::TranslationUnit tu = valid_unit();
  tu.buffers[0].is_const = true;
  const auto diags = analysis::verify_unit(tu);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, "HCG306");
}

TEST(CgirVerifier, DuplicateBuffer_HCG307) {
  cgir::TranslationUnit tu = valid_unit();
  tu.buffers.push_back(tu.buffers[0]);
  const auto diags = analysis::verify_unit(tu);
  // Reported once, not once per function walked.
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, "HCG307");
}

TEST(CgirVerifier, ArenaOverlap_HCG308) {
  std::vector<cgir::ArenaBinding> bindings;
  bindings.push_back({"arena0", "sig_a", 0, 4});
  bindings.push_back({"arena0", "sig_b", 5, 9});  // disjoint: fine
  EXPECT_TRUE(analysis::verify_arena_bindings(bindings).empty());
  bindings.push_back({"arena0", "sig_c", 4, 6});  // overlaps both
  const auto diags = analysis::verify_arena_bindings(bindings);
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].code, "HCG308");
  EXPECT_NE(diags[0].message.find("live ranges overlap"), std::string::npos);
  // Different slots never conflict.
  bindings[2].slot = "arena1";
  EXPECT_TRUE(analysis::verify_arena_bindings(bindings).empty());
}

TEST(CgirVerifier, RequireValidUnitNamesTheBreakingPass) {
  cgir::TranslationUnit tu = valid_unit();
  tu.step.body[0].end = 9;
  const cgir::PassStats stats;
  try {
    analysis::require_valid_unit(tu, stats, "fuse_loops");
    FAIL() << "expected CodegenError";
  } catch (const CodegenError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("after pass 'fuse_loops'"), std::string::npos);
    EXPECT_NE(what.find("HCG301"), std::string::npos);
  }
}

// ---- verifier wired into the -O1 pipeline -----------------------------------

/// Arms a fault spec for the test body, disarming afterwards.
struct ArmedFaults {
  explicit ArmedFaults(const std::string& spec) {
    faults::Registry::instance().configure(spec);
  }
  ~ArmedFaults() { faults::Registry::instance().clear(); }
};

codegen::EmitConfig verified_simulink_config() {
  codegen::EmitConfig config;
  config.tool_name = "simulink";
  config.batch_mode = codegen::BatchMode::kScattered;
  config.isa = &isa::builtin("neon_sim");
  config.opt_level = 1;
  config.reuse_buffers = true;
  config.verify_cgir = true;
  return config;
}

TEST(VerifiedPipeline, CleanRunRecordsEveryCheckpoint) {
  const Model model = resolved(benchmodels::batch_chain_model(3, 64));
  const codegen::GeneratedCode code =
      codegen::emit_model(model, verified_simulink_config());
  const std::vector<std::string> expected = {
      "lower", "fuse_loops", "forward_copies", "eliminate_dead_buffers",
      "reuse_arena"};
  EXPECT_EQ(code.report.verified_passes, expected);
}

TEST(VerifiedPipeline, BrokenPassIsCaughtAndNamed) {
  // The cgir.pass fault site corrupts the unit right after the named pass
  // runs; the verifier must attribute the damage to exactly that pass.
  for (const char* pass : {"fuse_loops", "forward_copies"}) {
    ArmedFaults armed(std::string("cgir.pass:") + pass + "=fail");
    const Model model = resolved(benchmodels::batch_chain_model(3, 64));
    try {
      codegen::emit_model(model, verified_simulink_config());
      FAIL() << "expected CodegenError for corrupted pass " << pass;
    } catch (const CodegenError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(std::string("after pass '") + pass + "'"),
                std::string::npos)
          << what;
      EXPECT_NE(what.find("HCG3"), std::string::npos) << what;
    }
  }
}

/// Clears HCG_VERIFY for one test body (ctest keeps it always-on) and
/// restores the previous value afterwards.
struct VerifyEnvOff {
  VerifyEnvOff() {
    if (const char* value = std::getenv("HCG_VERIFY")) saved = value;
    unsetenv("HCG_VERIFY");
  }
  ~VerifyEnvOff() {
    if (!saved.empty()) setenv("HCG_VERIFY", saved.c_str(), 1);
  }
  std::string saved;
};

TEST(VerifiedPipeline, VerifierOffDoesNotThrowOnCorruption) {
  // Without --verify-cgir the corruption flows through silently — the
  // verifier, not the emitter, is what catches it.
  VerifyEnvOff env_off;
  ArmedFaults armed("cgir.pass:fuse_loops=fail");
  codegen::EmitConfig config = verified_simulink_config();
  config.verify_cgir = false;
  const Model model = resolved(benchmodels::batch_chain_model(3, 64));
  EXPECT_NO_THROW(codegen::emit_model(model, config));
}

// ---- HCG4xx: vectorization remarks ------------------------------------------

/// A one-instruction ISA: `lanes` lanes of f32, Add only.
isa::VectorIsa tiny_isa(int width_bits, int lanes) {
  isa::VectorIsa table;
  table.name = "tiny";
  table.width_bits = width_bits;
  table.vtypes.push_back({DataType::kFloat32, lanes, "float32xN_t"});
  isa::Instruction add;
  add.name = "vadd";
  add.type = DataType::kFloat32;
  add.lanes = lanes;
  add.nodes.push_back(
      {BatchOp::kAdd,
       {{isa::PatternArg::Kind::kInput, 1, 0},
        {isa::PatternArg::Kind::kInput, 2, 0}}});
  add.input_slots = 2;
  add.code = "O1 = vadd(I1, I2);";
  table.instructions.push_back(add);
  return table;
}

Model add_chain(int n) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kFloat32, Shape{n});
  PortRef w = b.inport("w", DataType::kFloat32, Shape{n});
  PortRef s = b.actor("s", "Add", {x, w});
  b.outport("y", s);
  return resolved(b.take());
}

TEST(LintVectorization, ViableRegion_HCG400) {
  const Model model = add_chain(64);
  DiagnosticEngine diags;
  analysis::lint_vectorization(model, isa::builtin("neon"), 0, diags);
  const Diagnostic& diag = find_diag(diags, "HCG400");
  EXPECT_EQ(diag.severity, Severity::kNote);
  EXPECT_NE(diag.location.find("region {s}"), std::string::npos);
  EXPECT_NE(diag.message.find("4 lanes"), std::string::npos);
}

TEST(LintVectorization, RegionTooShort_HCG401) {
  const Model model = add_chain(2);  // 2 floats < one 128-bit vector
  DiagnosticEngine diags;
  analysis::lint_vectorization(model, isa::builtin("neon"), 0, diags);
  const Diagnostic& diag = find_diag(diags, "HCG401");
  EXPECT_NE(diag.message.find("shorter than one 128-bit vector"),
            std::string::npos);
}

TEST(LintVectorization, BelowThreshold_HCG402) {
  const Model model = add_chain(64);
  DiagnosticEngine diags;
  analysis::lint_vectorization(model, isa::builtin("neon"), 5, diags);
  const Diagnostic& diag = find_diag(diags, "HCG402");
  EXPECT_NE(diag.message.find("--threshold floor of 5"), std::string::npos);
}

TEST(LintVectorization, LaneMismatch_HCG403) {
  // A 128-bit table that only offers 2-lane f32: the plan wants 4 lanes,
  // the vtype disagrees, so the region stays scalar.
  const Model model = add_chain(64);
  DiagnosticEngine diags;
  analysis::lint_vectorization(model, tiny_isa(128, 2), 0, diags);
  const Diagnostic& diag = find_diag(diags, "HCG403");
  EXPECT_NE(diag.message.find("needs a uniform 4"), std::string::npos);
}

TEST(LintVectorization, MixedWidthChain_HCG404) {
  ModelBuilder b("m");
  PortRef a = b.inport("a", DataType::kInt32, Shape{64});
  PortRef w = b.inport("w", DataType::kInt32, Shape{64});
  PortRef s = b.actor("s", "Add", {a, w});
  PortRef nar = b.actor("nar", "Cast", {s}, {{"to", "i16"}});
  PortRef c = b.inport("c", DataType::kInt16, Shape{64});
  PortRef m = b.actor("m", "Mul", {nar, c});
  b.outport("y", m);
  const Model model = resolved(b.take());
  DiagnosticEngine diags;
  analysis::lint_vectorization(model, isa::builtin("neon"), 0, diags);
  const Diagnostic& diag = find_diag(diags, "HCG404");
  EXPECT_NE(diag.location.find("'nar'"), std::string::npos);
  EXPECT_NE(diag.message.find("i32 -> i16"), std::string::npos);
}

TEST(LintVectorization, ScaleMismatch_HCG405) {
  // No catalog actor changes array length under resolution, so pin the
  // ports by hand: a "batch" actor consuming 64 elements, producing 32.
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kFloat32, Shape{64});
  PortRef a = b.actor("a", "Abs", {x});
  b.outport("y", a);
  Model model = resolved(b.take());
  Actor& abs_actor = model.actor(model.actor_by_name("a").id());
  abs_actor.set_ports({{DataType::kFloat32, Shape{64}}},
                      {{DataType::kFloat32, Shape{32}}});
  DiagnosticEngine diags;
  analysis::lint_vectorization(model, isa::builtin("neon"), 0, diags);
  const Diagnostic& diag = find_diag(diags, "HCG405");
  EXPECT_NE(diag.message.find("64 -> 32"), std::string::npos);
}

TEST(LintVectorization, NonBatchSplit_HCG406) {
  // batch -> DCT -> batch: the intensive actor splits one chain in two.
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kFloat32, Shape{256});
  PortRef w = b.inport("w", DataType::kFloat32, Shape{256});
  PortRef pre = b.actor("pre", "Add", {x, w});
  PortRef mid = b.actor("mid", "DCT", {pre});
  PortRef post = b.actor("post", "Mul", {mid, w});
  b.outport("y", post);
  const Model model = resolved(b.take());
  DiagnosticEngine diags;
  analysis::lint_vectorization(model, isa::builtin("neon"), 0, diags);
  const Diagnostic& diag = find_diag(diags, "HCG406");
  EXPECT_NE(diag.location.find("'mid'"), std::string::npos);
  EXPECT_NE(diag.message.find("between 'pre' and 'post'"), std::string::npos);
}

TEST(LintVectorization, NoSimdOp_HCG407) {
  // tiny_isa knows Add only; a Mul actor has no single-instruction match.
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kFloat32, Shape{64});
  PortRef w = b.inport("w", DataType::kFloat32, Shape{64});
  PortRef m = b.actor("m", "Mul", {x, w});
  b.outport("y", m);
  const Model model = resolved(b.take());
  DiagnosticEngine diags;
  analysis::lint_vectorization(model, tiny_isa(128, 4), 0, diags);
  const Diagnostic& diag = find_diag(diags, "HCG407");
  EXPECT_NE(diag.message.find("no single-instruction Mul"), std::string::npos);
}

TEST(LintModel, CleanChainYieldsOnlyTheVectorizedNote) {
  Model model = benchmodels::batch_chain_model(3, 64);
  analysis::LintOptions options;
  const isa::VectorIsa& neon = isa::builtin("neon");
  options.isa = &neon;
  DiagnosticEngine diags;
  analysis::lint_model(model, options, diags);
  ASSERT_EQ(diags.diagnostics().size(), 1u);
  EXPECT_EQ(diags.diagnostics()[0].code, "HCG400");
  EXPECT_FALSE(diags.has_errors());
}

// ---- SARIF ------------------------------------------------------------------

TEST(Sarif, LevelsAndSkeleton) {
  EXPECT_EQ(analysis::sarif_level(Severity::kNote), "note");
  EXPECT_EQ(analysis::sarif_level(Severity::kRemark), "note");
  EXPECT_EQ(analysis::sarif_level(Severity::kWarning), "warning");
  EXPECT_EQ(analysis::sarif_level(Severity::kError), "error");

  DiagnosticEngine diags;
  diags.error("HCG102", "actor 'm' (Mul)", "input port 1 unconnected");
  const std::string sarif = analysis::to_sarif(diags.diagnostics(), "m.xml");
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\":\"HCG102\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\":\"m.xml\""), std::string::npos);
  EXPECT_NE(sarif.find("\"fullyQualifiedName\":\"actor 'm' (Mul)\""),
            std::string::npos);
  // Every stable code is published as a rule, findings or not.
  for (const auto& rule : analysis::diagnostic_rules()) {
    EXPECT_NE(sarif.find("\"id\":\"" + std::string(rule.code) + "\""),
              std::string::npos);
  }
}

// ---- hcgc lint CLI contract -------------------------------------------------

struct CliResult {
  int exit_code;
  std::string output;  // stdout + stderr
};

/// Runs hcgc through the shell; `env_prefix` ("VAR=x ") and `cwd` (empty =
/// inherit) shape the child like the robustness suite does.
CliResult run_lint_cli(const std::string& args,
                       const std::string& env_prefix = "",
                       const std::string& cwd = "") {
  TempDir dir;
  const auto out_path = dir.path() / "out.txt";
  std::string cmd;
  if (!cwd.empty()) cmd += "cd " + cwd + " && ";
  cmd += env_prefix + std::string(HCG_HCGC_PATH) + " " + args + " > " +
         out_path.string() + " 2>&1";
  const int rc = std::system(cmd.c_str());
  std::string output;
  try {
    output = read_file(out_path);
  } catch (const Error&) {
  }
  return CliResult{rc == -1 ? -1 : WEXITSTATUS(rc), output};
}

std::filesystem::path examples_dir() {
  return std::filesystem::path(HCG_EXAMPLES_DIR);
}

class LintCli : public ::testing::Test {
 protected:
  std::string write_model(const std::string& body) {
    const auto path = dir_.path() / "model.xml";
    write_file(path, body);
    return path.string();
  }
  TempDir dir_;
};

TEST_F(LintCli, WarningsExitZero) {
  const std::string model = write_model(R"(
<model name="warns">
  <actor name="x"    type="Inport" dtype="f32" shape="64"/>
  <actor name="live" type="Abs"/>
  <actor name="dead" type="Sqrt"/>
  <actor name="y"    type="Outport"/>
  <connect from="x"    to="live"/>
  <connect from="x"    to="dead"/>
  <connect from="live" to="y"/>
</model>)");
  const CliResult r = run_lint_cli("lint " + model);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("warning HCG104"), std::string::npos);
}

TEST_F(LintCli, WerrorPromotesToExitEight) {
  const std::string model = write_model(R"(
<model name="warns">
  <actor name="x"    type="Inport" dtype="f32" shape="64"/>
  <actor name="live" type="Abs"/>
  <actor name="dead" type="Sqrt"/>
  <actor name="y"    type="Outport"/>
  <connect from="x"    to="live"/>
  <connect from="x"    to="dead"/>
  <connect from="live" to="y"/>
</model>)");
  const CliResult r = run_lint_cli("lint --Werror " + model);
  EXPECT_EQ(r.exit_code, 8);
  EXPECT_NE(r.output.find("error HCG104"), std::string::npos);
}

TEST_F(LintCli, ErrorsExitEightAndReportEveryFinding) {
  const std::string model = write_model(R"(
<model name="broken">
  <actor name="x" type="Inport" dtype="f32" shape="64"/>
  <actor name="w" type="Inport" dtype="i32" shape="64"/>
  <actor name="m" type="Mul"/>
  <actor name="c" type="Cast"/>
  <actor name="y" type="Outport"/>
  <actor name="z" type="Outport"/>
  <connect from="x" to="m:0"/>
  <connect from="w" to="m:1"/>
  <connect from="x" to="c"/>
  <connect from="m" to="y"/>
  <connect from="c" to="z"/>
</model>)");
  const CliResult r = run_lint_cli("lint " + model);
  EXPECT_EQ(r.exit_code, 8);
  // One run reports both independent failures, unlike generate's first-throw.
  EXPECT_NE(r.output.find("HCG202"), std::string::npos);
  EXPECT_NE(r.output.find("HCG203"), std::string::npos);
}

TEST_F(LintCli, MixedWidthChainGetsActionableRemark) {
  const std::string model = write_model(R"(
<model name="mixed">
  <actor name="a"   type="Inport" dtype="i32" shape="1024"/>
  <actor name="b"   type="Inport" dtype="i32" shape="1024"/>
  <actor name="s"   type="Add"/>
  <actor name="nar" type="Cast" to="i16"/>
  <actor name="c"   type="Inport" dtype="i16" shape="1024"/>
  <actor name="m"   type="Mul"/>
  <actor name="y"   type="Outport"/>
  <connect from="a"   to="s:0"/>
  <connect from="b"   to="s:1"/>
  <connect from="s"   to="nar"/>
  <connect from="nar" to="m:0"/>
  <connect from="c"   to="m:1"/>
  <connect from="m"   to="y"/>
</model>)");
  const CliResult r = run_lint_cli("lint " + model);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("remark HCG404"), std::string::npos);
  EXPECT_NE(r.output.find("i32 -> i16"), std::string::npos);
  // --no-remarks silences HCG4xx but keeps the rest of the lint.
  const CliResult quiet = run_lint_cli("lint --no-remarks " + model);
  EXPECT_EQ(quiet.exit_code, 0);
  EXPECT_EQ(quiet.output.find("HCG404"), std::string::npos);
}

TEST_F(LintCli, BrokenPassNamedThroughCli) {
  const std::string model = write_model(R"(
<model name="chain">
  <actor name="a" type="Inport" dtype="f32" shape="64"/>
  <actor name="b" type="Inport" dtype="f32" shape="64"/>
  <actor name="s" type="Add"/>
  <actor name="y" type="Outport"/>
  <connect from="a" to="s:0"/>
  <connect from="b" to="s:1"/>
  <connect from="s" to="y"/>
</model>)");
  const CliResult r = run_lint_cli(
      "generate --verify-cgir --isa neon_sim " + model,
      "HCG_FAULTS=\"cgir.pass:eliminate_dead_buffers=fail\" ");
  EXPECT_EQ(r.exit_code, 6);
  EXPECT_NE(r.output.find("after pass 'eliminate_dead_buffers'"),
            std::string::npos);
  EXPECT_NE(r.output.find("HCG3"), std::string::npos);
}

TEST(LintExamples, GoldenSarifForFig4) {
  // Lint from inside the examples directory so the SARIF artifact URI is the
  // machine-independent relative path "fig4.xml".
  TempDir dir;
  const auto sarif_path = dir.path() / "fig4.sarif";
  const CliResult r =
      run_lint_cli("lint fig4.xml --sarif " + sarif_path.string(), "",
                   examples_dir().string());
  ASSERT_EQ(r.exit_code, 0) << r.output;
  const std::string got = read_file(sarif_path);
  const auto golden_path =
      std::filesystem::path(HCG_GOLDEN_DIR) / "fig4.sarif";
  if (std::getenv("HCG_UPDATE_GOLDEN")) {
    write_file(golden_path, got);
    GTEST_SKIP() << "updated " << golden_path;
  }
  ASSERT_TRUE(std::filesystem::exists(golden_path))
      << "no golden SARIF; run with HCG_UPDATE_GOLDEN=1 to create it";
  EXPECT_EQ(got, read_file(golden_path))
      << "SARIF output changed; regenerate with HCG_UPDATE_GOLDEN=1 if "
         "intentional";
}

TEST(LintExamples, WholeCorpusLintsClean) {
  // Every shipped example must stay free of lint errors (remarks/notes OK),
  // even under --Werror.
  int seen = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(examples_dir())) {
    if (entry.path().extension() != ".xml") continue;
    ++seen;
    const CliResult r =
        run_lint_cli("lint --Werror " + entry.path().string());
    EXPECT_EQ(r.exit_code, 0)
        << entry.path().filename() << " has lint findings:\n" << r.output;
  }
  EXPECT_GE(seen, 3);
}

}  // namespace
}  // namespace hcg
