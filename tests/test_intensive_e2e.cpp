// End-to-end coverage of the full Table 1(a) intensive actor set: matrix
// operations and 2-D transforms generated, compiled and verified against the
// oracle, across tools — plus Algorithm 1's choices for them.
#include <gtest/gtest.h>

#include "actors/resolve.hpp"
#include "benchmodels/benchmodels.hpp"
#include "codegen/generator.hpp"
#include "isa/builtin.hpp"
#include "model/builder.hpp"
#include "toolchain/compiled_model.hpp"
#include "vm/interpreter.hpp"

namespace hcg {
namespace {

double compare(const Model& m, codegen::Generator& generator,
               std::uint64_t seed = 11) {
  std::vector<Tensor> inputs = benchmodels::workload(m, seed);
  // Matrix models need invertible inputs: make square matrices diagonally
  // dominant in place.
  for (size_t i = 0; i < inputs.size(); ++i) {
    Tensor& t = inputs[i];
    if (t.shape().rank() == 2 && t.shape().dims[0] == t.shape().dims[1] &&
        is_float(t.type())) {
      const int n = t.shape().dims[0];
      for (int d = 0; d < n; ++d) {
        t.set_double(d * n + d, t.get_double(d * n + d) + n + 2.0);
      }
    }
  }
  Interpreter oracle(m);
  oracle.init();
  std::vector<Tensor> expected = oracle.step(inputs);
  codegen::GeneratedCode code = generator.generate(m);
  toolchain::CompiledModel compiled(code);
  compiled.init();
  std::vector<Tensor> got = compiled.step_tensors(m, inputs);
  double worst = 0;
  for (size_t i = 0; i < got.size(); ++i) {
    worst = std::max(worst, got[i].max_abs_difference(expected[i]));
  }
  return worst;
}

Model matrix_pipeline(int n, DataType type) {
  // det(A) and (A * A^-1) — exercises MatInv, MatMul and MatDet in one model.
  ModelBuilder b("matpipe");
  PortRef a = b.inport("a", type, Shape({n, n}));
  PortRef inv = b.actor("inv", "MatInv", {a});
  PortRef prod = b.actor("prod", "MatMul", {a, inv});
  PortRef det = b.actor("det", "MatDet", {a});
  b.outport("identity", prod);
  b.outport("determinant", det);
  return b.take();
}

class MatrixSizes : public ::testing::TestWithParam<int> {};

TEST_P(MatrixSizes, PipelineMatchesOracleForAllTools) {
  Model m = resolved(matrix_pipeline(GetParam(), DataType::kFloat64));
  auto sc = codegen::make_simulink_generator();
  auto df = codegen::make_dfsynth_generator();
  auto hcg = codegen::make_hcg_generator(isa::builtin("neon_sim"));
  EXPECT_LT(compare(m, *sc), 1e-6);
  EXPECT_LT(compare(m, *df), 1e-6);
  EXPECT_LT(compare(m, *hcg), 1e-6);
}

TEST_P(MatrixSizes, HcgPicksSpecializedKernelsForSmallMatrices) {
  Model m = resolved(matrix_pipeline(GetParam(), DataType::kFloat32));
  auto hcg = codegen::make_hcg_generator(isa::builtin("neon_sim"));
  codegen::GeneratedCode code = hcg->generate(m);
  // At n <= 4 both unrolled/analytic kernels are eligible; whatever wins the
  // pre-calculation must be recorded for all three actors.
  EXPECT_EQ(code.intensive_choices.size(), 3u);
  for (const auto& [actor, impl] : code.intensive_choices) {
    EXPECT_FALSE(impl.empty()) << actor;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatrixSizes, ::testing::Values(2, 3, 4));

TEST(Intensive2D, Fft2dRoundTripAcrossTools) {
  ModelBuilder b("fft2d");
  PortRef x = b.inport("x", DataType::kComplex64, Shape({8, 16}));
  PortRef f = b.actor("f", "FFT2D", {x});
  PortRef g = b.actor("g", "IFFT2D", {f});
  b.outport("y", g);
  Model m = resolved(b.take());
  auto df = codegen::make_dfsynth_generator();
  auto hcg = codegen::make_hcg_generator(isa::builtin("neon_sim"));
  EXPECT_LT(compare(m, *df), 1e-3);
  EXPECT_LT(compare(m, *hcg), 1e-3);
}

TEST(Intensive2D, Fft2dHcgPicksRadix2ForPow2Dims) {
  ModelBuilder b("fft2d");
  PortRef x = b.inport("x", DataType::kComplex64, Shape({16, 16}));
  b.outport("y", b.actor("f", "FFT2D", {x}));
  Model m = resolved(b.take());
  auto hcg = codegen::make_hcg_generator(isa::builtin("neon_sim"));
  codegen::GeneratedCode code = hcg->generate(m);
  EXPECT_EQ(code.intensive_choices.at("f"), "fft2d_radix2");
  auto df = codegen::make_dfsynth_generator();
  codegen::GeneratedCode base = df->generate(m);
  EXPECT_EQ(base.intensive_choices.at("f"), "fft2d_dft");
}

TEST(Intensive2D, Dct2dMatchesOracle) {
  ModelBuilder b("dct2d");
  PortRef x = b.inport("x", DataType::kFloat32, Shape({8, 8}));
  b.outport("y", b.actor("d", "DCT2D", {x}));
  Model m = resolved(b.take());
  auto df = codegen::make_dfsynth_generator();
  auto hcg = codegen::make_hcg_generator(isa::builtin("neon_sim"));
  EXPECT_LT(compare(m, *df), 1e-3);
  EXPECT_LT(compare(m, *hcg), 1e-3);
}

TEST(Intensive2D, Conv2dMatchesOracle) {
  ModelBuilder b("conv2d");
  PortRef x = b.inport("x", DataType::kFloat32, Shape({12, 10}));
  PortRef k = b.inport("k", DataType::kFloat32, Shape({3, 3}));
  b.outport("y", b.actor("c", "Conv2D", {x, k}));
  Model m = resolved(b.take());
  auto sc = codegen::make_simulink_generator();
  auto hcg = codegen::make_hcg_generator(isa::builtin("sse"));
  EXPECT_LT(compare(m, *sc), 1e-4);
  EXPECT_LT(compare(m, *hcg), 1e-4);
}

TEST(IntensivePipelines, FftIntoBatchRegionIntoIfft) {
  // Spectral gating: FFT -> (complex magnitudes are not batch ops, so gate
  // the real interleaved array with a Switch) -> IFFT.  Exercises intensive
  // and batch synthesis in one model with the region between two kernels.
  ModelBuilder b("spectral");
  PortRef x = b.inport("x", DataType::kComplex64, Shape({64}));
  PortRef f = b.actor("f", "FFT", {x});
  PortRef g = b.actor("g", "IFFT", {f});
  b.outport("y", g);
  Model m = resolved(b.take());
  auto hcg = codegen::make_hcg_generator(isa::builtin("neon_sim"));
  EXPECT_LT(compare(m, *hcg), 1e-3);
  codegen::GeneratedCode code = hcg->generate(m);
  EXPECT_EQ(code.intensive_choices.size(), 2u);
}

TEST(IntensivePipelines, DctChainSharesHistoryAcrossActors) {
  // Two same-sized DCT actors: the second synthesis hits the history the
  // first one stored (one pre-calculation for both).
  ModelBuilder b("dcts");
  PortRef x = b.inport("x", DataType::kFloat32, Shape({128}));
  PortRef d1 = b.actor("d1", "DCT", {x});
  PortRef d2 = b.actor("d2", "IDCT", {d1});
  PortRef d3 = b.actor("d3", "DCT", {d2});
  b.outport("y", d3);
  Model m = resolved(b.take());
  synth::SelectionHistory history;
  auto hcg = codegen::make_hcg_generator(isa::builtin("neon_sim"), &history);
  codegen::GeneratedCode code = hcg->generate(m);
  EXPECT_EQ(code.intensive_choices.at("d1"), code.intensive_choices.at("d3"));
  EXPECT_EQ(history.size(), 2u);  // one DCT entry + one IDCT entry
  EXPECT_LT(compare(m, *hcg), 1e-3);
}

}  // namespace
}  // namespace hcg
