// Interval value-range analysis tests (docs/ANALYSIS.md): the interval
// domain primitives, one triggering model per HCG6xx code, UnitDelay
// widening, the range-driven lane-narrowing pass (HCG411/HCG412 and the
// regions_narrowed report counters), rank-2 mixed-dtype lint coverage, and
// the anti-drift check pinning diagnostic_rules() against the docs table.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "actors/resolve.hpp"
#include "analysis/diagnostics.hpp"
#include "analysis/linter.hpp"
#include "analysis/range.hpp"
#include "benchmodels/benchmodels.hpp"
#include "codegen/generator.hpp"
#include "isa/builtin.hpp"
#include "model/builder.hpp"
#include "support/error.hpp"
#include "support/fileio.hpp"

namespace hcg {
namespace {

using analysis::Diagnostic;
using analysis::DiagnosticEngine;
using analysis::Interval;
using analysis::RangeAnalysis;
using analysis::Severity;

constexpr double kInf = std::numeric_limits<double>::infinity();

bool has_code(const DiagnosticEngine& diags, const std::string& code) {
  for (const Diagnostic& diag : diags.diagnostics()) {
    if (diag.code == code) return true;
  }
  return false;
}

const Diagnostic& find_diag(const DiagnosticEngine& diags,
                            const std::string& code) {
  for (const Diagnostic& diag : diags.diagnostics()) {
    if (diag.code == code) return diag;
  }
  throw Error("test: no diagnostic with code " + code);
}

/// Runs the range analysis with diagnostics on a resolved model.
RangeAnalysis analyze(const Model& model, DiagnosticEngine& diags) {
  return analysis::analyze_ranges(model, &diags);
}

/// The interval of a named actor's output 0.
Interval interval_of(const RangeAnalysis& ranges, const Model& model,
                     const std::string& name) {
  const Interval* iv = ranges.find(model.actor_by_name(name).id(), 0);
  if (iv == nullptr) throw Error("test: no interval for " + name);
  return *iv;
}

PortRef bounded_inport(ModelBuilder& b, const std::string& name, DataType type,
                       Shape shape, double lo, double hi) {
  PortRef ref = b.inport(name, type, std::move(shape));
  b.model().actor(ref.actor).set_param("range_min", std::to_string(lo));
  b.model().actor(ref.actor).set_param("range_max", std::to_string(hi));
  return ref;
}

// ---- interval domain primitives ---------------------------------------------

TEST(IntervalDomain, JoinIsTheHull) {
  const Interval a{-2.0, 5.0};
  const Interval b{3.0, 9.0};
  EXPECT_EQ(join(a, b), (Interval{-2.0, 9.0}));
  EXPECT_EQ(join(b, a), (Interval{-2.0, 9.0}));
  EXPECT_TRUE(a.inside(join(a, b)));
  EXPECT_TRUE(b.inside(join(a, b)));
}

TEST(IntervalDomain, TypeIntervalsMatchTheTypes) {
  EXPECT_EQ(analysis::type_interval(DataType::kInt16),
            (Interval{-32768.0, 32767.0}));
  EXPECT_EQ(analysis::type_interval(DataType::kUInt8), (Interval{0.0, 255.0}));
  EXPECT_EQ(analysis::type_interval(DataType::kFloat32),
            (Interval{-kInf, kInf}));
}

TEST(IntervalDomain, FitsUsesInwardRoundedBounds) {
  EXPECT_TRUE(analysis::interval_fits({-100.0, 100.0}, DataType::kInt8));
  EXPECT_FALSE(analysis::interval_fits({-200.0, 200.0}, DataType::kInt8));
  EXPECT_TRUE(analysis::interval_fits({-200.0, 200.0}, DataType::kInt16));
  EXPECT_FALSE(analysis::interval_fits({-1.0, 1.0}, DataType::kUInt8));
  // Every finite interval fits a float type; infinite ones fit only floats.
  EXPECT_TRUE(analysis::interval_fits({-kInf, kInf}, DataType::kFloat32));
  EXPECT_FALSE(analysis::interval_fits({-kInf, kInf}, DataType::kInt64));
}

TEST(IntervalDomain, BoundedNeedsBothEndpointsFinite) {
  // A half-infinite interval (Abs/Sqrt of an undeclared float) is not
  // actionable knowledge; the HCG6xx gate must reject it.
  EXPECT_FALSE(analysis::interval_bounded({0.0, kInf}, DataType::kFloat32));
  EXPECT_FALSE(analysis::interval_bounded({-kInf, 0.0}, DataType::kFloat64));
  EXPECT_TRUE(analysis::interval_bounded({-100.0, 100.0}, DataType::kInt32));
  // The full type range is top: nothing was learned.
  EXPECT_FALSE(
      analysis::interval_bounded({-32768.0, 32767.0}, DataType::kInt16));
}

// ---- propagation over models ------------------------------------------------

TEST(RangeAnalysis, RangepipeBoundsMatchTheDocumentedChain) {
  const Model model = resolved(benchmodels::rangepipe_model(32));
  DiagnosticEngine diags;
  const RangeAnalysis ranges = analyze(model, diags);

  EXPECT_EQ(interval_of(ranges, model, "d"), (Interval{-150.0, 150.0}));
  EXPECT_EQ(interval_of(ranges, model, "x"), (Interval{-3350.0, 3350.0}));
  EXPECT_EQ(interval_of(ranges, model, "z3"), (Interval{-11125.0, 11125.0}));
  EXPECT_EQ(interval_of(ranges, model, "clip"), (Interval{-11125.0, 400.0}));
  EXPECT_GT(ranges.bounded_outputs, 0);
  EXPECT_EQ(diags.count(Severity::kWarning), 0);
  EXPECT_EQ(diags.count(Severity::kError), 0);
}

TEST(RangeAnalysis, UndeclaredInputsStayAtTop) {
  const Model model = resolved(benchmodels::rangepipe_model(32, false));
  DiagnosticEngine diags;
  const RangeAnalysis ranges = analyze(model, diags);
  const Interval top = analysis::type_interval(DataType::kInt32);
  EXPECT_EQ(interval_of(ranges, model, "d"), top);
  EXPECT_EQ(interval_of(ranges, model, "x"), top);
  // Shr manufactures finite bounds even from top (z and e are provably
  // within ±2^30 and ±2^29), so the z3 = z2 + z sum is the one signal in
  // this graph that provably can exceed i32 — a true-positive HCG601.
  EXPECT_EQ(diags.count(Severity::kWarning), 1);
  const Diagnostic& diag = find_diag(diags, "HCG601");
  EXPECT_NE(diag.location.find("z3"), std::string::npos) << diag.location;
}

TEST(RangeAnalysis, GrowingDelayLoopWidensToTop) {
  // y(t+1) = y(t) + 1 through a UnitDelay: the state interval grows every
  // round, so widening must kick in and count the delay as widened.
  ModelBuilder b("grow");
  PortRef one = b.constant("one", DataType::kInt32, Shape{4}, "1");
  Model model = b.take();
  const ActorId add = model.add_actor("add", "Add");
  const ActorId d = model.add_actor("d", "UnitDelay");
  model.actor(d).set_param("dtype", "i32");
  model.actor(d).set_param("shape", "4");
  const ActorId y = model.add_actor("y", "Outport");
  model.connect(model.actor_by_name("one").id(), 0, add, 0);
  model.connect(d, 0, add, 1);
  model.connect(add, 0, d, 0);
  model.connect(add, 0, y, 0);
  resolve_model(model);

  DiagnosticEngine diags;
  const RangeAnalysis ranges = analyze(model, diags);
  EXPECT_EQ(ranges.widened_delays, 1);
  EXPECT_EQ(interval_of(ranges, model, "d"),
            analysis::type_interval(DataType::kInt32));
}

TEST(RangeAnalysis, StableDelayLoopKeepsItsFixpoint) {
  // y(t+1) = min(y(t) + 8, 10): the state reaches its fixpoint [0, 10] by
  // the second round — inside the widening patience — so no widening
  // happens and the bound survives.  (A slow-converging loop like +1
  // toward 10 would widen instead; see GrowingDelayLoopWidensToTop.)
  ModelBuilder b("stable");
  b.constant("one", DataType::kInt32, Shape{4}, "8");
  b.constant("cap", DataType::kInt32, Shape{4}, "10");
  Model model = b.take();
  const ActorId add = model.add_actor("add", "Add");
  const ActorId clip = model.add_actor("clip", "Min");
  const ActorId d = model.add_actor("d", "UnitDelay");
  model.actor(d).set_param("dtype", "i32");
  model.actor(d).set_param("shape", "4");
  const ActorId y = model.add_actor("y", "Outport");
  model.connect(model.actor_by_name("one").id(), 0, add, 0);
  model.connect(d, 0, add, 1);
  model.connect(add, 0, clip, 0);
  model.connect(model.actor_by_name("cap").id(), 0, clip, 1);
  model.connect(clip, 0, d, 0);
  model.connect(clip, 0, y, 0);
  resolve_model(model);

  DiagnosticEngine diags;
  const RangeAnalysis ranges = analyze(model, diags);
  EXPECT_EQ(ranges.widened_delays, 0);
  const Interval state = interval_of(ranges, model, "d");
  EXPECT_TRUE(state.inside(Interval{0.0, 10.0})) << state.to_string();
}

TEST(RangeAnalysis, RequiresAResolvedModel) {
  ModelBuilder b("raw");
  PortRef x = b.inport("x", DataType::kInt32, Shape{4});
  b.outport("y", b.actor("a", "Abs", {x}));
  const Model model = b.take();  // never resolved
  DiagnosticEngine diags;
  EXPECT_THROW(analyze(model, diags), Error);
}

// ---- HCG6xx triggering models -----------------------------------------------

TEST(RangeDiagnostics, PossibleSignedOverflow_HCG601) {
  ModelBuilder b("m");
  PortRef a =
      bounded_inport(b, "a", DataType::kInt16, Shape{8}, -30000.0, 30000.0);
  PortRef s = b.actor("s", "Add", {a, a});  // [-60000, 60000] exceeds i16
  b.outport("y", s);
  const Model model = resolved(b.take());

  DiagnosticEngine diags;
  analyze(model, diags);
  const Diagnostic& diag = find_diag(diags, "HCG601");
  EXPECT_EQ(diag.severity, Severity::kWarning);
  EXPECT_NE(diag.message.find("i16"), std::string::npos);
  EXPECT_FALSE(diag.related.empty()) << "producer location missing";
}

TEST(RangeDiagnostics, UnboundedOperandsSuppressHCG601) {
  // The same overflowing shape with no declared ranges: operands are top,
  // so the "did we actually learn something" gate keeps the lint quiet.
  ModelBuilder b("m");
  PortRef a = b.inport("a", DataType::kInt16, Shape{8});
  b.outport("y", b.actor("s", "Add", {a, a}));
  const Model model = resolved(b.take());

  DiagnosticEngine diags;
  analyze(model, diags);
  EXPECT_FALSE(has_code(diags, "HCG601"));
}

TEST(RangeDiagnostics, PossibleDivisionByZero_HCG602) {
  ModelBuilder b("m");
  PortRef num = b.inport("num", DataType::kFloat32, Shape{8});
  PortRef den =
      bounded_inport(b, "den", DataType::kFloat32, Shape{8}, -0.5, 0.5);
  b.outport("y", b.actor("q", "Div", {num, den}));
  const Model model = resolved(b.take());

  DiagnosticEngine diags;
  analyze(model, diags);
  const Diagnostic& diag = find_diag(diags, "HCG602");
  EXPECT_EQ(diag.severity, Severity::kWarning);
  EXPECT_NE(diag.message.find("zero"), std::string::npos);
  EXPECT_FALSE(diag.related.empty());
}

TEST(RangeDiagnostics, NonZeroDivisorIsClean) {
  ModelBuilder b("m");
  PortRef num = b.inport("num", DataType::kFloat32, Shape{8});
  PortRef den = bounded_inport(b, "den", DataType::kFloat32, Shape{8}, 0.5, 2.0);
  b.outport("y", b.actor("q", "Div", {num, den}));
  const Model model = resolved(b.take());

  DiagnosticEngine diags;
  analyze(model, diags);
  EXPECT_FALSE(has_code(diags, "HCG602"));
}

TEST(RangeDiagnostics, LossyNarrowingCast_HCG603) {
  ModelBuilder b("m");
  PortRef a =
      bounded_inport(b, "a", DataType::kInt32, Shape{8}, -1000.0, 1000.0);
  b.outport("y", b.actor("c", "Cast", {a}, {{"to", "i8"}}));
  const Model model = resolved(b.take());

  DiagnosticEngine diags;
  analyze(model, diags);
  const Diagnostic& diag = find_diag(diags, "HCG603");
  EXPECT_EQ(diag.severity, Severity::kWarning);
  EXPECT_NE(diag.message.find("i8"), std::string::npos);
}

TEST(RangeDiagnostics, ProvenFittingCastIsClean) {
  ModelBuilder b("m");
  PortRef a = bounded_inport(b, "a", DataType::kInt32, Shape{8}, -100.0, 100.0);
  b.outport("y", b.actor("c", "Cast", {a}, {{"to", "i8"}}));
  const Model model = resolved(b.take());

  DiagnosticEngine diags;
  const RangeAnalysis ranges = analyze(model, diags);
  EXPECT_FALSE(has_code(diags, "HCG603"));
  EXPECT_EQ(interval_of(ranges, model, "c"), (Interval{-100.0, 100.0}));
}

TEST(RangeDiagnostics, DeadSwitchBranch_HCG604) {
  ModelBuilder b("m");
  PortRef a = b.inport("a", DataType::kInt32, Shape{8});
  PortRef alt = b.inport("alt", DataType::kInt32, Shape{8});
  PortRef ctrl =
      bounded_inport(b, "ctrl", DataType::kInt32, Shape{8}, 1.0, 5.0);
  b.outport("y", b.actor("sel", "Switch", {a, alt, ctrl}));
  const Model model = resolved(b.take());

  DiagnosticEngine diags;
  const RangeAnalysis ranges = analyze(model, diags);
  const Diagnostic& diag = find_diag(diags, "HCG604");
  EXPECT_EQ(diag.severity, Severity::kRemark);
  EXPECT_NE(diag.message.find("never"), std::string::npos);
  EXPECT_FALSE(diag.related.empty()) << "control producer location missing";
  // The dead branch's interval must not leak into the result.
  EXPECT_EQ(interval_of(ranges, model, "sel"),
            analysis::type_interval(DataType::kInt32));
}

TEST(RangeDiagnostics, ConstantFoldable_HCG605) {
  ModelBuilder b("m");
  PortRef two = b.constant("two", DataType::kInt32, Shape{8}, "2");
  PortRef g = b.actor("g", "Gain", {two}, {{"gain", "3"}});
  b.outport("y", g);
  const Model model = resolved(b.take());

  DiagnosticEngine diags;
  const RangeAnalysis ranges = analyze(model, diags);
  const Diagnostic& diag = find_diag(diags, "HCG605");
  EXPECT_EQ(diag.severity, Severity::kRemark);
  EXPECT_NE(diag.message.find('6'), std::string::npos);
  EXPECT_EQ(interval_of(ranges, model, "g"), (Interval{6.0, 6.0}));
}

// ---- lane narrowing (HCG411 / HCG412) ---------------------------------------

codegen::EmitConfig narrow_config(int opt_level) {
  codegen::EmitConfig config;
  config.tool_name = "hcg";
  config.batch_mode = codegen::BatchMode::kRegions;
  config.isa = &isa::builtin("neon_sim");
  config.fold_scalar_expressions = true;
  config.reuse_buffers = true;
  config.opt_level = opt_level;
  return config;
}

bool report_has_code(const obs::Report& report, const std::string& code) {
  for (const auto& diag : report.diagnostics) {
    if (diag.code == code) return true;
  }
  return false;
}

TEST(LaneNarrowing, ProvenRangesNarrowTheRegion_HCG411) {
  const Model model = resolved(benchmodels::rangepipe_model(64));
  const codegen::GeneratedCode code =
      codegen::emit_model(model, narrow_config(1));

  EXPECT_GE(code.report.regions_narrowed, 1);
  EXPECT_EQ(code.report.narrowing_blocked, 0);
  EXPECT_TRUE(report_has_code(code.report, "HCG411"));
  // Every region instruction runs at the narrow type: 8 i16 lanes.
  for (const std::string& ins : code.simd_instructions) {
    EXPECT_NE(ins.find("_s16"), std::string::npos) << ins;
  }
}

TEST(LaneNarrowing, UnprovenRangesBlockNarrowing_HCG412) {
  const Model model = resolved(benchmodels::rangepipe_model(64, false));
  const codegen::GeneratedCode code =
      codegen::emit_model(model, narrow_config(1));

  EXPECT_EQ(code.report.regions_narrowed, 0);
  EXPECT_GE(code.report.narrowing_blocked, 1);
  EXPECT_TRUE(report_has_code(code.report, "HCG412"));
  for (const std::string& ins : code.simd_instructions) {
    EXPECT_NE(ins.find("_s32"), std::string::npos) << ins;
  }
}

TEST(LaneNarrowing, OffAtO0) {
  const Model model = resolved(benchmodels::rangepipe_model(64));
  const codegen::GeneratedCode code =
      codegen::emit_model(model, narrow_config(0));
  EXPECT_EQ(code.report.regions_narrowed, 0);
  EXPECT_FALSE(report_has_code(code.report, "HCG411"));
}

// ---- rank-2 (matrix) models with mixed dtypes -------------------------------

TEST(LintRank2, MixedDtypeMatrixAddIsTolerantlyReported) {
  // Two rank-2 inports with different element types feed one Add: tolerant
  // resolution must report the actor (HCG202) and keep going to also
  // report an independent second failure, not stop at the first.
  ModelBuilder b("m");
  PortRef a = b.inport("a", DataType::kInt16, Shape{4, 8});
  PortRef c = b.inport("c", DataType::kInt32, Shape{4, 8});
  PortRef bad1 = b.actor("bad1", "Add", {a, c});
  PortRef f = b.inport("f", DataType::kFloat32, Shape{4, 8});
  PortRef bad2 = b.actor("bad2", "Mul", {f, c});
  b.outport("y1", bad1);
  b.outport("y2", bad2);
  Model model = b.take();

  DiagnosticEngine diags;
  EXPECT_FALSE(analysis::lint_resolve(model, diags));
  int mismatches = 0;
  for (const Diagnostic& diag : diags.diagnostics()) {
    if (diag.code == "HCG202") ++mismatches;
  }
  EXPECT_EQ(mismatches, 2);
}

TEST(LintRank2, CastBridgedMatrixPipelineLintsClean) {
  // The same mix made legal with an explicit widening Cast: the full lint
  // sequence resolves it, the range analysis runs over the rank-2 signals,
  // and no numeric-safety warning fires.
  ModelBuilder b("m");
  PortRef a = bounded_inport(b, "a", DataType::kInt16, Shape{4, 8}, -100, 100);
  PortRef c = bounded_inport(b, "c", DataType::kInt32, Shape{4, 8}, -200, 200);
  PortRef wide = b.actor("wide", "Cast", {a}, {{"to", "i32"}});
  PortRef s = b.actor("s", "Add", {wide, c});
  b.outport("y", s);
  Model model = b.take();

  DiagnosticEngine diags;
  analysis::LintOptions options;
  options.isa = &isa::builtin("neon_sim");
  const RangeAnalysis ranges = analysis::lint_model(model, options, diags);
  EXPECT_EQ(diags.count(Severity::kError), 0);
  EXPECT_EQ(diags.count(Severity::kWarning), 0);
  EXPECT_EQ(interval_of(ranges, model, "s"), (Interval{-300.0, 300.0}));
}

TEST(LintRank2, LossyMatrixCastWarns_HCG603) {
  // Rank-2 does not change the per-element transfer: a bounded i32 matrix
  // cast down to u8 with a negative range still warns.
  ModelBuilder b("m");
  PortRef a = bounded_inport(b, "a", DataType::kInt32, Shape{3, 5}, -40, 300);
  b.outport("y", b.actor("c", "Cast", {a}, {{"to", "u8"}}));
  Model model = b.take();

  DiagnosticEngine diags;
  analysis::LintOptions options;
  options.isa = &isa::builtin("neon_sim");
  analysis::lint_model(model, options, diags);
  EXPECT_TRUE(has_code(diags, "HCG603"));
  EXPECT_EQ(diags.count(Severity::kError), 0);
}

// ---- docs anti-drift --------------------------------------------------------

// Parses the `| HCGnnn | name | severity | meaning |` rows of the rules
// table in docs/ANALYSIS.md.
struct DocRule {
  std::string code;
  std::string name;
  std::string severity;
};

std::vector<DocRule> parse_docs_rules(const std::string& text) {
  std::vector<DocRule> rules;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind("| HCG", 0) != 0) continue;
    std::vector<std::string> cells;
    size_t start = 1;
    while (start < line.size()) {
      size_t end = line.find('|', start);
      if (end == std::string::npos) break;
      std::string cell = line.substr(start, end - start);
      const size_t a = cell.find_first_not_of(' ');
      const size_t z = cell.find_last_not_of(' ');
      cells.push_back(a == std::string::npos ? ""
                                             : cell.substr(a, z - a + 1));
      start = end + 1;
    }
    if (cells.size() < 3) continue;
    rules.push_back({cells[0], cells[1], cells[2]});
  }
  return rules;
}

TEST(DocsAntiDrift, RulesTableMatchesTheRegistry) {
  const std::filesystem::path docs =
      std::filesystem::path(HCG_REPO_ROOT) / "docs" / "ANALYSIS.md";
  ASSERT_TRUE(std::filesystem::exists(docs)) << docs;
  const std::vector<DocRule> documented = parse_docs_rules(read_file(docs));
  const std::vector<analysis::DiagnosticRule>& registered =
      analysis::diagnostic_rules();

  ASSERT_EQ(documented.size(), registered.size())
      << "docs/ANALYSIS.md rules table and diagnostic_rules() disagree on "
         "the number of codes; update whichever is stale";

  for (size_t i = 0; i < registered.size(); ++i) {
    EXPECT_EQ(documented[i].code, registered[i].code)
        << "row " << i << ": table order must match the registry";
    EXPECT_EQ(documented[i].name, registered[i].name)
        << registered[i].code << ": name drifted";
    EXPECT_EQ(
        documented[i].severity,
        std::string(analysis::severity_name(registered[i].default_severity)))
        << registered[i].code << ": severity drifted";
  }
}

TEST(DocsAntiDrift, EveryRangeCodeHasADocsRowAndSarifRule) {
  const std::filesystem::path docs =
      std::filesystem::path(HCG_REPO_ROOT) / "docs" / "ANALYSIS.md";
  const std::vector<DocRule> documented = parse_docs_rules(read_file(docs));
  for (const char* code :
       {"HCG411", "HCG412", "HCG601", "HCG602", "HCG603", "HCG604",
        "HCG605"}) {
    EXPECT_NE(analysis::find_rule(code), nullptr) << code;
    const bool in_docs =
        std::any_of(documented.begin(), documented.end(),
                    [&](const DocRule& r) { return r.code == code; });
    EXPECT_TRUE(in_docs) << code << " missing from docs/ANALYSIS.md";
  }
}

}  // namespace
}  // namespace hcg
