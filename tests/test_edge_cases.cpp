// Edge-case end-to-end coverage: degenerate models, unusual wirings and
// narrow element types pushed through the full generate/compile/run path.
#include <gtest/gtest.h>

#include <algorithm>

#include "actors/resolve.hpp"
#include "benchmodels/benchmodels.hpp"
#include "codegen/generator.hpp"
#include "isa/builtin.hpp"
#include "model/builder.hpp"
#include "support/rng.hpp"
#include "toolchain/compiled_model.hpp"
#include "vm/interpreter.hpp"

namespace hcg {
namespace {

double run_vs_oracle(const Model& m, codegen::Generator& generator,
                     const std::vector<Tensor>& inputs) {
  Interpreter oracle(m);
  oracle.init();
  std::vector<Tensor> expected = oracle.step(inputs);
  toolchain::CompiledModel compiled(generator.generate(m));
  compiled.init();
  std::vector<Tensor> got = compiled.step_tensors(m, inputs);
  double worst = 0;
  for (size_t i = 0; i < got.size(); ++i) {
    worst = std::max(worst, got[i].max_abs_difference(expected[i]));
  }
  return worst;
}

TEST(EdgeCases, PassthroughModel) {
  // Inport wired straight to Outport: nothing to compute.
  ModelBuilder b("pass");
  PortRef x = b.inport("x", DataType::kFloat32, Shape({16}));
  b.outport("y", x);
  Model m = resolved(b.take());
  auto gen = codegen::make_hcg_generator(isa::builtin("neon_sim"));
  auto inputs = benchmodels::workload(m, 3);
  EXPECT_EQ(run_vs_oracle(m, *gen, inputs), 0.0);
}

TEST(EdgeCases, InportFansOutToMultipleOutports) {
  ModelBuilder b("fan");
  PortRef x = b.inport("x", DataType::kInt32, Shape({8}));
  PortRef a = b.actor("a", "Abs", {x});
  b.outport("y1", a);
  b.outport("y2", a);
  b.outport("y3", x);
  Model m = resolved(b.take());
  auto gen = codegen::make_hcg_generator(isa::builtin("neon_sim"));
  auto inputs = benchmodels::workload(m, 4);
  EXPECT_EQ(run_vs_oracle(m, *gen, inputs), 0.0);
}

TEST(EdgeCases, SameSignalOnBothOperands) {
  // Add(x, x) and Mul(x, x): two wires from one producer.
  ModelBuilder b("dup");
  PortRef x = b.inport("x", DataType::kInt32, Shape({32}));
  PortRef twice = b.actor("twice", "Add", {x, x});
  PortRef square = b.actor("square", "Mul", {x, x});
  PortRef sum = b.actor("sum", "Add", {twice, square});
  b.outport("y", sum);
  Model m = resolved(b.take());
  for (const char* table : {"neon_sim", "avx2"}) {
    auto gen = codegen::make_hcg_generator(isa::builtin(table));
    auto inputs = benchmodels::workload(m, 5);
    EXPECT_EQ(run_vs_oracle(m, *gen, inputs), 0.0) << table;
  }
}

TEST(EdgeCases, ScalarOnlyModelUsesFoldedExpressions) {
  ModelBuilder b("scal");
  PortRef x = b.inport("x", DataType::kFloat64, Shape({}));
  PortRef g = b.actor("g", "Gain", {x}, {{"gain", "2.5"}});
  PortRef h = b.actor("h", "Bias", {g}, {{"bias", "-1"}});
  PortRef s = b.actor("s", "Sqrt", {b.actor("abs", "Abs", {h})});
  b.outport("y", s);
  Model m = resolved(b.take());
  auto sc = codegen::make_simulink_generator();
  auto inputs = benchmodels::workload(m, 6);
  EXPECT_LT(run_vs_oracle(m, *sc, inputs), 1e-12);
}

TEST(EdgeCases, NarrowTypesEndToEnd) {
  // i8 x 37 (odd length, 16-lane vectors -> remainder 5) through a chain
  // with a halving-add opportunity; i8 stays in [-30, 30] so all lowerings
  // agree exactly.
  ModelBuilder b("narrow");
  PortRef x = b.inport("x", DataType::kInt8, Shape({37}));
  PortRef y = b.inport("y", DataType::kInt8, Shape({37}));
  PortRef s = b.actor("s", "Add", {x, y});
  PortRef h = b.actor("h", "Shr", {s}, {{"amount", "1"}});  // fuses to vhadd
  PortRef m2 = b.actor("m2", "Max", {h, y});
  b.outport("o", m2);
  Model m = resolved(b.take());

  Rng rng(9);
  std::vector<Tensor> inputs;
  for (int port = 0; port < 2; ++port) {
    Tensor t(DataType::kInt8, Shape({37}));
    for (int i = 0; i < 37; ++i) {
      t.as<std::int8_t>()[i] = static_cast<std::int8_t>(rng.uniform_int(-30, 30));
    }
    inputs.push_back(std::move(t));
  }
  auto gen = codegen::make_hcg_generator(isa::builtin("neon_sim"));
  codegen::GeneratedCode code = gen->generate(m);
  EXPECT_EQ(code.simd_instructions,
            (std::vector<std::string>{"vhaddq_s8", "vmaxq_s8"}));
  EXPECT_EQ(run_vs_oracle(m, *gen, inputs), 0.0);
}

TEST(EdgeCases, UnsignedTypesEndToEnd) {
  ModelBuilder b("unsigned");
  PortRef x = b.inport("x", DataType::kUInt16, Shape({24}));
  PortRef y = b.inport("y", DataType::kUInt16, Shape({24}));
  PortRef d = b.actor("d", "Abd", {x, y});
  PortRef mx = b.actor("mx", "Max", {d, y});
  PortRef sh = b.actor("sh", "Shr", {mx}, {{"amount", "2"}});
  b.outport("o", sh);
  Model m = resolved(b.take());

  Rng rng(10);
  std::vector<Tensor> inputs;
  for (int port = 0; port < 2; ++port) {
    Tensor t(DataType::kUInt16, Shape({24}));
    for (int i = 0; i < 24; ++i) {
      t.as<std::uint16_t>()[i] =
          static_cast<std::uint16_t>(rng.uniform_int(0, 60000));
    }
    inputs.push_back(std::move(t));
  }
  for (const char* table : {"neon_sim", "sse"}) {
    auto gen = codegen::make_hcg_generator(isa::builtin(table));
    EXPECT_EQ(run_vs_oracle(m, *gen, inputs), 0.0) << table;
  }
}

TEST(EdgeCases, TwoIndependentRegionsOfDifferentTypes) {
  // An f32 region and an i16 region in one model, no interaction.
  ModelBuilder b("tworeg");
  PortRef xf = b.inport("xf", DataType::kFloat32, Shape({20}));
  PortRef xi = b.inport("xi", DataType::kInt16, Shape({40}));
  PortRef f1 = b.actor("f1", "Abs", {xf});
  PortRef f2 = b.actor("f2", "Sqrt", {f1});
  PortRef i1 = b.actor("i1", "BitNot", {xi});
  PortRef i2 = b.actor("i2", "Min", {i1, xi});
  b.outport("yf", f2);
  b.outport("yi", i2);
  Model m = resolved(b.take());

  auto gen = codegen::make_hcg_generator(isa::builtin("neon_sim"));
  codegen::GeneratedCode code = gen->generate(m);
  EXPECT_EQ(code.fused_regions, 2);
  auto inputs = benchmodels::workload(m, 11);
  // Sqrt of |x| on floats: tolerance for libm vs vector sqrt is zero on
  // this host, but allow ulp noise.
  EXPECT_LT(run_vs_oracle(m, *gen, inputs), 1e-6);
}

TEST(EdgeCases, RegionOutputConsumedByIntensiveActor) {
  // Batch region result feeds a DCT: the region output must be materialized
  // even though other region values stay in registers.
  ModelBuilder b("regdct");
  PortRef x = b.inport("x", DataType::kFloat32, Shape({64}));
  PortRef w = b.inport("w", DataType::kFloat32, Shape({64}));
  PortRef s = b.actor("s", "Sub", {x, w});
  PortRef sq = b.actor("sq", "Mul", {s, s});
  PortRef dct = b.actor("dct", "DCT", {sq});
  b.outport("y", dct);
  Model m = resolved(b.take());
  auto gen = codegen::make_hcg_generator(isa::builtin("neon_sim"));
  auto inputs = benchmodels::workload(m, 12);
  EXPECT_LT(run_vs_oracle(m, *gen, inputs), 1e-2);
}

TEST(EdgeCases, ConstantFeedsOutportDirectly) {
  ModelBuilder b("constout");
  b.inport("x", DataType::kFloat32, Shape({4}));  // unused input
  PortRef c = b.constant("c", DataType::kInt32, Shape({4}), "1,2,3,4");
  b.outport("y", c);
  Model m = resolved(b.take());
  auto gen = codegen::make_dfsynth_generator();
  auto inputs = benchmodels::workload(m, 13);
  EXPECT_EQ(run_vs_oracle(m, *gen, inputs), 0.0);
}

TEST(EdgeCases, DeadActorIsStillExecutedConsistently) {
  // An actor whose output feeds nothing: legal, and both worlds ignore it.
  ModelBuilder b("dead");
  PortRef x = b.inport("x", DataType::kFloat32, Shape({8}));
  b.actor("dead", "Abs", {x});  // no consumer
  b.outport("y", x);
  Model m = resolved(b.take());
  auto gen = codegen::make_hcg_generator(isa::builtin("neon_sim"));
  auto inputs = benchmodels::workload(m, 14);
  EXPECT_EQ(run_vs_oracle(m, *gen, inputs), 0.0);
}

TEST(EdgeCases, Int64OpsFallBackToScalarLoops) {
  // No built-in table carries 64-bit integer vtypes, so i64 batch actors
  // never join a region and translate conventionally — and still agree with
  // the oracle.
  ModelBuilder b("wide");
  PortRef x = b.inport("x", DataType::kInt64, Shape({16}));
  PortRef y = b.inport("y", DataType::kInt64, Shape({16}));
  PortRef s = b.actor("s", "Add", {x, y});
  PortRef n = b.actor("n", "BitNot", {s});
  b.outport("o", n);
  Model m = resolved(b.take());
  auto gen = codegen::make_hcg_generator(isa::builtin("neon_sim"));
  codegen::GeneratedCode code = gen->generate(m);
  EXPECT_TRUE(code.simd_instructions.empty());
  EXPECT_EQ(code.fused_regions, 0);
  auto inputs = benchmodels::workload(m, 16);
  EXPECT_EQ(run_vs_oracle(m, *gen, inputs), 0.0);
}

TEST(EdgeCases, LongChainSingleRegion) {
  // 24 chained actors fuse into one region with one loop.
  Model m = resolved(benchmodels::batch_chain_model(24, 128));
  auto gen = codegen::make_hcg_generator(isa::builtin("neon_sim"));
  codegen::GeneratedCode code = gen->generate(m);
  EXPECT_EQ(code.fused_regions, 1);
  // Add0 alone, then 11 fused (Mul,Add) pairs, then the trailing Mul:
  EXPECT_EQ(code.simd_instructions.size(), 13u);
  EXPECT_GE(std::count(code.simd_instructions.begin(),
                       code.simd_instructions.end(), "vmlaq_f32"),
            10);
  auto inputs = benchmodels::workload(m, 15);
  EXPECT_LT(run_vs_oracle(m, *gen, inputs), 1e-1);
}

}  // namespace
}  // namespace hcg
