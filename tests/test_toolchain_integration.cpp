// Integration tests: generated code is compiled with the host C compiler,
// dlopen'ed and executed, and its outputs are compared against the
// interpreter oracle — for every benchmark model, every generator and every
// instruction table.
#include <gtest/gtest.h>

#include "actors/resolve.hpp"
#include "benchmodels/benchmodels.hpp"
#include "codegen/generator.hpp"
#include "isa/builtin.hpp"
#include "model/builder.hpp"
#include "model/loader.hpp"
#include "toolchain/compiled_model.hpp"
#include "vm/interpreter.hpp"

namespace hcg {
namespace {

double run_and_compare(const Model& resolved_model,
                       codegen::Generator& generator,
                       const std::string& opt_flags = "-O2",
                       std::uint64_t seed = 42) {
  const std::vector<Tensor> inputs =
      benchmodels::workload(resolved_model, seed);
  Interpreter oracle(resolved_model);
  oracle.init();
  const std::vector<Tensor> expected = oracle.step(inputs);

  codegen::GeneratedCode code = generator.generate(resolved_model);
  toolchain::CompileOptions options;
  options.opt_flags = opt_flags;
  toolchain::CompiledModel compiled(code, options);
  compiled.init();
  const std::vector<Tensor> got =
      compiled.step_tensors(resolved_model, inputs);

  EXPECT_EQ(got.size(), expected.size());
  double worst = 0;
  for (size_t i = 0; i < got.size(); ++i) {
    worst = std::max(worst, got[i].max_abs_difference(expected[i]));
  }
  return worst;
}

class PaperModelsBySeed : public ::testing::TestWithParam<int> {};

TEST(Toolchain, CompilerIsAvailable) {
  ASSERT_TRUE(toolchain::compiler_available())
      << "these integration tests need a host gcc";
}

// ---------------------------------------------------------------------------
// Every paper model x every generator agrees with the oracle
// ---------------------------------------------------------------------------

class EveryModel : public ::testing::TestWithParam<int> {
 protected:
  Model model() {
    std::vector<Model> models = benchmodels::paper_models();
    return resolved(std::move(models.at(static_cast<size_t>(GetParam()))));
  }
};

TEST_P(EveryModel, SimulinkMatchesOracle) {
  Model m = model();
  auto gen = codegen::make_simulink_generator();
  EXPECT_LT(run_and_compare(m, *gen), 2e-2);
}

TEST_P(EveryModel, SimulinkScatteredMatchesOracle) {
  Model m = model();
  auto gen = codegen::make_simulink_generator(&isa::builtin("sse"));
  EXPECT_LT(run_and_compare(m, *gen), 2e-2);
}

TEST_P(EveryModel, DfsynthMatchesOracle) {
  Model m = model();
  auto gen = codegen::make_dfsynth_generator();
  EXPECT_LT(run_and_compare(m, *gen), 2e-2);
}

TEST_P(EveryModel, HcgNeonSimMatchesOracle) {
  Model m = model();
  auto gen = codegen::make_hcg_generator(isa::builtin("neon_sim"));
  EXPECT_LT(run_and_compare(m, *gen), 2e-2);
}

TEST_P(EveryModel, HcgAvx2MatchesOracleAtO3) {
  Model m = model();
  auto gen = codegen::make_hcg_generator(isa::builtin("avx2"));
  EXPECT_LT(run_and_compare(m, *gen, "-O3"), 2e-2);
}

INSTANTIATE_TEST_SUITE_P(PaperModels, EveryModel, ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// Integer models must be bit-exact
// ---------------------------------------------------------------------------

TEST(Integration, FirIsBitExactAcrossAllTools) {
  Model m = resolved(benchmodels::fir_model(1024));
  auto sc = codegen::make_simulink_generator();
  auto df = codegen::make_dfsynth_generator();
  auto hcg = codegen::make_hcg_generator(isa::builtin("neon_sim"));
  auto hcg_avx = codegen::make_hcg_generator(isa::builtin("avx2"));
  EXPECT_EQ(run_and_compare(m, *sc), 0.0);
  EXPECT_EQ(run_and_compare(m, *df), 0.0);
  EXPECT_EQ(run_and_compare(m, *hcg), 0.0);
  EXPECT_EQ(run_and_compare(m, *hcg_avx), 0.0);
}

TEST(Integration, Fig4IsBitExactIncludingHalvingAdd) {
  Model m = resolved(benchmodels::paper_fig4_model(1000));  // offset 1000%4=0
  auto hcg = codegen::make_hcg_generator(isa::builtin("neon_sim"));
  EXPECT_EQ(run_and_compare(m, *hcg), 0.0);
  auto sse = codegen::make_hcg_generator(isa::builtin("sse"));
  EXPECT_EQ(run_and_compare(m, *sse), 0.0);
}

TEST(Integration, RemainderPathIsBitExact) {
  // 1003 % 4 == 3: three elements go through the scalar remainder.
  Model m = resolved(benchmodels::paper_fig4_model(1003));
  auto hcg = codegen::make_hcg_generator(isa::builtin("neon_sim"));
  EXPECT_EQ(run_and_compare(m, *hcg), 0.0);
  auto avx = codegen::make_hcg_generator(isa::builtin("avx2"));
  EXPECT_EQ(run_and_compare(m, *avx), 0.0);
}

TEST(Integration, SwitchSelectAgreesWithOracleOnAllBackends) {
  ModelBuilder b("switchy");
  PortRef x = b.inport("x", DataType::kInt32, Shape({100}));
  PortRef y = b.inport("y", DataType::kInt32, Shape({100}));
  PortRef ctrl = b.inport("ctrl", DataType::kInt32, Shape({100}));
  PortRef d = b.actor("d", "Sub", {x, y});
  PortRef sel = b.actor("sel", "Switch", {d, y, ctrl});
  PortRef out = b.actor("clip", "Max", {sel, y});
  b.outport("o", out);
  Model m = resolved(b.take());

  for (const char* table : {"neon_sim", "sse", "avx2"}) {
    auto gen = codegen::make_hcg_generator(isa::builtin(table));
    EXPECT_EQ(run_and_compare(m, *gen), 0.0) << table;
  }
  auto df = codegen::make_dfsynth_generator();
  EXPECT_EQ(run_and_compare(m, *df), 0.0);
}

TEST(Integration, FloatSwitchAgreesWithOracle) {
  ModelBuilder b("fswitch");
  PortRef x = b.inport("x", DataType::kFloat32, Shape({64}));
  PortRef y = b.inport("y", DataType::kFloat32, Shape({64}));
  PortRef ctrl = b.inport("ctrl", DataType::kFloat32, Shape({64}));
  PortRef sel = b.actor("sel", "Switch", {x, y, ctrl});
  b.outport("o", sel);
  Model m = resolved(b.take());
  for (const char* table : {"neon_sim", "sse"}) {
    auto gen = codegen::make_hcg_generator(isa::builtin(table));
    EXPECT_EQ(run_and_compare(m, *gen), 0.0) << table;
  }
}

// ---------------------------------------------------------------------------
// Multi-step state
// ---------------------------------------------------------------------------

TEST(Integration, DelayedAccumulatorMatchesOracleOverManySteps) {
  // acc(t) = x(t) + acc(t-1), x is a 16-wide batch signal.
  Model m("acc_model");
  ActorId x = m.add_actor("x", "Inport");
  m.actor(x).set_param("dtype", "i32");
  m.actor(x).set_param("shape", "16");
  ActorId add = m.add_actor("acc", "Add");
  ActorId dly = m.add_actor("dly", "UnitDelay");
  m.actor(dly).set_param("dtype", "i32");
  m.actor(dly).set_param("shape", "16");
  ActorId y = m.add_actor("y", "Outport");
  m.connect(x, 0, add, 0);
  m.connect(dly, 0, add, 1);
  m.connect(add, 0, dly, 0);
  m.connect(add, 0, y, 0);
  resolve_model(m);

  Interpreter oracle(m);
  oracle.init();
  auto gen = codegen::make_hcg_generator(isa::builtin("neon_sim"));
  codegen::GeneratedCode code = gen->generate(m);
  toolchain::CompiledModel compiled(code);
  compiled.init();

  for (int step = 0; step < 10; ++step) {
    auto inputs = benchmodels::workload(m, 100 + static_cast<unsigned>(step));
    auto expected = oracle.step(inputs);
    auto got = compiled.step_tensors(m, inputs);
    ASSERT_EQ(got[0].max_abs_difference(expected[0]), 0.0) << "step " << step;
  }

  // init() resets the accumulator in both worlds.
  oracle.init();
  compiled.init();
  auto inputs = benchmodels::workload(m, 7);
  EXPECT_EQ(compiled.step_tensors(m, inputs)[0].max_abs_difference(
                oracle.step(inputs)[0]),
            0.0);
}

TEST(Integration, GeneratedCodeIsWarningCleanUnderStrictFlags) {
  // Production bar: every generator's output compiles with -Wall -Wextra
  // -Werror for every paper model.
  toolchain::CompileOptions strict;
  strict.extra_flags = {"-Wall", "-Wextra", "-Werror"};
  for (Model& raw : benchmodels::paper_models()) {
    Model m = resolved(std::move(raw));
    for (auto& gen :
         {codegen::make_simulink_generator(), codegen::make_dfsynth_generator(),
          codegen::make_hcg_generator(isa::builtin("neon_sim")),
          codegen::make_hcg_generator(isa::builtin("avx2"))}) {
      codegen::GeneratedCode code = gen->generate(m);
      EXPECT_NO_THROW(toolchain::CompiledModel compiled(code, strict))
          << m.name() << " / " << code.tool_name;
    }
  }
}

TEST(Integration, GenerationIsDeterministic) {
  for (const char* table : {"neon_sim", "sse"}) {
    Model m = resolved(benchmodels::highpass_model(128));
    auto gen1 = codegen::make_hcg_generator(isa::builtin(table));
    auto gen2 = codegen::make_hcg_generator(isa::builtin(table));
    EXPECT_EQ(gen1->generate(m).source, gen2->generate(m).source) << table;
  }
}

// ---------------------------------------------------------------------------
// Toolchain error handling
// ---------------------------------------------------------------------------

TEST(Toolchain, CompilationFailureThrowsWithDiagnostics) {
  codegen::GeneratedCode broken;
  broken.model_name = "broken";
  broken.tool_name = "test";
  broken.init_symbol = "broken_init";
  broken.step_symbol = "broken_step";
  broken.source = "this is not C\n";
  try {
    toolchain::CompiledModel compiled(broken);
    FAIL() << "expected ToolchainError";
  } catch (const ToolchainError& e) {
    EXPECT_NE(std::string(e.what()).find("compilation failed"),
              std::string::npos);
  }
}

TEST(Toolchain, MissingSymbolsThrow) {
  codegen::GeneratedCode code;
  code.model_name = "sym";
  code.tool_name = "test";
  code.init_symbol = "sym_init";
  code.step_symbol = "sym_step";
  code.source = "void sym_init(void) {}\n";  // no step
  EXPECT_THROW(toolchain::CompiledModel compiled(code), ToolchainError);
}

TEST(Toolchain, ReportsCompileTimeAndCommand) {
  auto gen = codegen::make_dfsynth_generator();
  codegen::GeneratedCode code = gen->generate(benchmodels::fir_model(8));
  toolchain::CompiledModel compiled(code);
  EXPECT_GT(compiled.compile_seconds(), 0.0);
  EXPECT_NE(compiled.compile_command().find("-shared"), std::string::npos);
  EXPECT_NE(compiled.compile_command().find("fir_bench_dfsynth"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Model loaded from XML goes end-to-end
// ---------------------------------------------------------------------------

TEST(Integration, XmlModelRoundTripsThroughHcg) {
  const char* xml = R"(
<model name="from_xml">
  <actor name="x"    type="Inport"   dtype="f32" shape="32"/>
  <actor name="w"    type="Inport"   dtype="f32" shape="32"/>
  <actor name="d"    type="Sub"/>
  <actor name="m"    type="Mul"/>
  <actor name="s"    type="Add"/>
  <actor name="y"    type="Outport"/>
  <connect from="x" to="d:0"/>
  <connect from="w" to="d:1"/>
  <connect from="d" to="m:0"/>
  <connect from="w" to="m:1"/>
  <connect from="m" to="s:0"/>
  <connect from="x" to="s:1"/>
  <connect from="s" to="y"/>
</model>)";
  Model m = resolved(load_model(xml));
  auto gen = codegen::make_hcg_generator(isa::builtin("neon_sim"));
  codegen::GeneratedCode code = gen->generate(m);
  // Sub, then fused multiply-add.
  EXPECT_EQ(code.simd_instructions,
            (std::vector<std::string>{"vsubq_f32", "vmlaq_f32"}));
  EXPECT_LT(run_and_compare(m, *gen), 1e-4);
}

}  // namespace
}  // namespace hcg
