// Unit tests for the cgir code-generation IR: the deterministic printer, the
// cgir-v1 dump/parse round-trip, and the optimization passes (region loop
// fusion, copy forwarding, dead-buffer elimination, arena reuse) on
// hand-built translation units.
#include <gtest/gtest.h>

#include "cgir/cgir.hpp"
#include "cgir/passes.hpp"
#include "support/error.hpp"

namespace hcg::cgir {
namespace {

Stmt load(const std::string& var, const std::string& buffer) {
  Stmt s = Stmt::text_line("float32x4_t " + var + " = vld1q_f32(&" + buffer +
                           "[i]);");
  s.defines = var;
  s.is_load = true;
  s.accesses.push_back({buffer, false, true});
  return s;
}

Stmt calc(const std::string& var, const std::string& expr) {
  Stmt s = Stmt::text_line("float32x4_t " + var + " = " + expr + ";");
  s.defines = var;
  return s;
}

Stmt store(const std::string& buffer, const std::string& var) {
  Stmt s = Stmt::text_line("vst1q_f32(&" + buffer + "[i], " + var + ");");
  s.stores_var = var;
  s.is_store = true;
  s.accesses.push_back({buffer, true, true});
  return s;
}

Stmt vloop(int begin, int end, int step, std::vector<Stmt> body) {
  Stmt s;
  s.kind = Stmt::Kind::kLoop;
  s.begin = begin;
  s.end = end;
  s.step = step;
  s.vector_loop = true;
  s.fusible = true;
  s.body = std::move(body);
  return s;
}

BufferDecl f32_buffer(const std::string& name, int components,
                      bool eligible = true) {
  BufferDecl decl;
  decl.name = name;
  decl.ctype = "float";
  decl.components = components;
  decl.elem_bytes = 4;
  decl.arena_eligible = eligible;
  return decl;
}

TranslationUnit unit_with_step(std::vector<Stmt> body,
                               std::vector<BufferDecl> buffers = {}) {
  TranslationUnit tu;
  tu.header_lines = {"/* test */", ""};
  tu.buffers = std::move(buffers);
  tu.init.opener = "void m_init(void) {";
  tu.step.opener = "void m_step(const void* const* inputs, void* const* "
                   "outputs) {";
  tu.step.body = std::move(body);
  return tu;
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

TEST(CgirPrint, TextLoopsAndBlankLines) {
  TranslationUnit tu = unit_with_step({});
  tu.step.body.push_back(Stmt::text_line("int x = 0;"));
  tu.step.body.push_back(Stmt::text_line(""));
  Stmt loop;
  loop.kind = Stmt::Kind::kLoop;
  loop.begin = 0;
  loop.end = 8;
  loop.step = 1;
  loop.body.push_back(Stmt::text_line("y[i] = x;"));
  tu.step.body.push_back(loop);

  const std::string source = print(tu);
  EXPECT_NE(source.find("  int x = 0;\n\n"), std::string::npos)
      << "blank separator lines must not be indented";
  EXPECT_NE(source.find("  for (int i = 0; i < 8; ++i) {\n"
                        "    y[i] = x;\n"
                        "  }\n"),
            std::string::npos);
  EXPECT_NE(source.find("/* ---- signal buffers ---- */\n"), std::string::npos);
  EXPECT_EQ(source.find("kernel library"), std::string::npos)
      << "kernel banner must be omitted when no kernels are embedded";
  EXPECT_TRUE(source.ends_with("}\n"));
}

TEST(CgirPrint, VectorAndSingleIterationLoops) {
  Stmt vec = vloop(3, 259, 4, {Stmt::text_line("body();")});
  vec.banner_actors = 2;
  vec.banner_isa = "neon";
  Stmt single = vloop(0, 4, 4, {Stmt::text_line("once();")});
  single.single_iteration = true;
  TranslationUnit tu = unit_with_step({vec, single});

  const std::string source = print(tu);
  EXPECT_NE(source.find("  /* batch region (2 actors) -> neon SIMD */\n"
                        "  for (int i = 3; i < 259; i += 4) {\n"),
            std::string::npos);
  EXPECT_NE(source.find("  {\n    const int i = 0;\n    once();\n  }\n"),
            std::string::npos);
}

TEST(CgirPrint, BufferDeclarations) {
  BufferDecl plain = f32_buffer("sig_a", 8);
  BufferDecl constant;
  constant.name = "taps";
  constant.ctype = "float";
  constant.components = 2;
  constant.elem_bytes = 4;
  constant.is_const = true;
  constant.init_values = "0.250000f, 0.500000f";
  EXPECT_EQ(print_decl(plain), "static float sig_a[8];");
  EXPECT_EQ(print_decl(constant),
            "static const float taps[2] = {0.250000f, 0.500000f};");
  EXPECT_EQ(plain.bytes(), 32u);
}

// ---------------------------------------------------------------------------
// Dump round-trip
// ---------------------------------------------------------------------------

TEST(CgirDump, RoundTripsThroughParse) {
  Stmt rem;
  rem.kind = Stmt::Kind::kLoop;
  rem.begin = 0;
  rem.end = 3;
  rem.step = 1;
  rem.fusible = true;
  rem.banner_actors = 2;
  rem.banner_isa = "neon_sim";
  Stmt line = Stmt::text_line("float a_s = in_a[i] + 1.0f;");
  line.defines = "a_s";
  line.accesses.push_back({"in_a", false, true});
  rem.body.push_back(line);

  TranslationUnit tu = unit_with_step(
      {Stmt::text_line("const float* in_a = (const float*)inputs[0];"), rem,
       vloop(3, 7, 4, {load("a_b", "in_a"), store("out_y", "a_b")})},
      {f32_buffer("sig_t", 7)});
  tu.kernel_sources.push_back("void helper(void) {}\n");

  const std::string serialized = dump(tu);
  EXPECT_EQ(serialized.rfind("cgir-v1\n", 0), 0u);
  TranslationUnit reparsed = parse_dump(serialized);
  EXPECT_EQ(print(reparsed), print(tu));
  EXPECT_EQ(dump(reparsed), serialized);
  ASSERT_EQ(reparsed.buffers.size(), 1u);
  EXPECT_TRUE(reparsed.buffers[0].arena_eligible);
  ASSERT_EQ(reparsed.step.body.size(), 3u);
  EXPECT_TRUE(reparsed.step.body[2].body[0].is_load);
  ASSERT_EQ(reparsed.step.body[1].body[0].accesses.size(), 1u);
  EXPECT_TRUE(reparsed.step.body[1].body[0].accesses[0].elementwise);
}

TEST(CgirDump, RejectsMalformedInput) {
  EXPECT_THROW(parse_dump("not-cgir\n"), ParseError);
  EXPECT_THROW(parse_dump("cgir-v1\nfunc bogus opener=\"x\"\n"), ParseError);
  EXPECT_THROW(parse_dump("cgir-v1\ntext t=\"orphan\"\n"), ParseError);
}

// ---------------------------------------------------------------------------
// Loop fusion
// ---------------------------------------------------------------------------

TEST(CgirFusion, MergesSameShapeLoops) {
  TranslationUnit tu = unit_with_step(
      {vloop(0, 64, 4, {load("a_b", "in_a"), store("out_p", "a_b")}),
       vloop(0, 64, 4, {load("b_b", "in_b"), store("out_q", "b_b")})});
  PassStats stats = run_passes(tu, {});
  EXPECT_EQ(stats.loops_fused, 1);
  ASSERT_EQ(tu.step.body.size(), 1u);
  EXPECT_EQ(tu.step.body[0].body.size(), 4u);
}

TEST(CgirFusion, RespectsShapeAndFusibility) {
  TranslationUnit tu = unit_with_step(
      {vloop(0, 64, 4, {store("out_p", "a_b")}),
       vloop(0, 32, 4, {store("out_q", "b_b")})});  // different domain
  tu.step.body.push_back(vloop(0, 64, 4, {store("out_r", "c_b")}));
  tu.step.body[2].fusible = false;  // opted out
  PassStats stats = run_passes(tu, {});
  EXPECT_EQ(stats.loops_fused, 0);
  EXPECT_EQ(tu.step.body.size(), 3u);
}

TEST(CgirFusion, HoistsConflictingInterveningStatement) {
  // The kernel call between the loops writes the buffer the second loop
  // reads, so it must move above the first loop for the fusion to be legal.
  Stmt kernel = Stmt::text_line("kernel(in_x, sig_k);");
  kernel.accesses.push_back({"sig_k", true, false});
  kernel.accesses.push_back({"in_x", false, false});
  TranslationUnit tu = unit_with_step(
      {vloop(0, 64, 4, {load("a_b", "in_a"), store("out_p", "a_b")}), kernel,
       vloop(0, 64, 4, {load("k_b", "sig_k"), store("out_q", "k_b")})});
  PassStats stats = run_passes(tu, {});
  EXPECT_EQ(stats.loops_fused, 1);
  ASSERT_EQ(tu.step.body.size(), 2u);
  EXPECT_EQ(tu.step.body[0].kind, Stmt::Kind::kText);  // hoisted kernel call
  EXPECT_EQ(tu.step.body[1].kind, Stmt::Kind::kLoop);
}

TEST(CgirFusion, IndependentInterveningStatementStaysBehind) {
  Stmt other = Stmt::text_line("memcpy(out_z, sig_z, 16);");
  other.accesses.push_back({"out_z", true, false});
  other.accesses.push_back({"sig_z", false, false});
  TranslationUnit tu = unit_with_step(
      {vloop(0, 64, 4, {store("out_p", "a_b")}), other,
       vloop(0, 64, 4, {store("out_q", "b_b")})});
  PassStats stats = run_passes(tu, {});
  EXPECT_EQ(stats.loops_fused, 1);
  ASSERT_EQ(tu.step.body.size(), 2u);
  EXPECT_EQ(tu.step.body[0].kind, Stmt::Kind::kLoop);
  EXPECT_EQ(tu.step.body[1].text, "memcpy(out_z, sig_z, 16);");
}

TEST(CgirFusion, AbortsWhenInterveningStatementConflictsBothWays) {
  // Reads what the first loop stores AND writes what the second reads:
  // it can neither stay nor hoist, so the loops must not merge.
  Stmt bridge = Stmt::text_line("transform(out_p, sig_k);");
  bridge.accesses.push_back({"out_p", false, false});
  bridge.accesses.push_back({"sig_k", true, false});
  TranslationUnit tu = unit_with_step(
      {vloop(0, 64, 4, {store("out_p", "a_b")}), bridge,
       vloop(0, 64, 4, {load("k_b", "sig_k"), store("out_q", "k_b")})});
  PassStats stats = run_passes(tu, {});
  EXPECT_EQ(stats.loops_fused, 0);
  EXPECT_EQ(tu.step.body.size(), 3u);
}

TEST(CgirFusion, AbortsOnNonElementwiseSharedBuffer) {
  Stmt whole = Stmt::text_line("prefix_sum(sig_s);");
  whole.accesses.push_back({"sig_s", true, false});  // whole-buffer write
  TranslationUnit tu = unit_with_step(
      {vloop(0, 64, 4, {store("sig_s", "a_b")}),
       vloop(0, 64, 4, {whole})});
  PassStats stats = run_passes(tu, {});
  EXPECT_EQ(stats.loops_fused, 0);
}

TEST(CgirFusion, SharedLoadIsDeduplicated) {
  // Both regions load in_w into w_b; after the merge one load suffices.
  TranslationUnit tu = unit_with_step(
      {vloop(0, 64, 4,
             {load("w_b", "in_w"), load("a_b", "in_a"),
              calc("p_b", "vaddq_f32(a_b, w_b)"), store("out_p", "p_b")}),
       vloop(0, 64, 4,
             {load("w_b", "in_w"), load("b_b", "in_b"),
              calc("q_b", "vmulq_f32(b_b, w_b)"), store("out_q", "q_b")})});
  PassStats stats = run_passes(tu, {});
  EXPECT_EQ(stats.loops_fused, 1);
  EXPECT_GE(stats.copies_elided, 1);
  ASSERT_EQ(tu.step.body.size(), 1u);
  int loads_of_w = 0;
  for (const Stmt& line : tu.step.body[0].body) {
    if (line.is_load && line.text.find("in_w") != std::string::npos) {
      ++loads_of_w;
    }
  }
  EXPECT_EQ(loads_of_w, 1);
}

// ---------------------------------------------------------------------------
// Copy forwarding
// ---------------------------------------------------------------------------

TEST(CgirForward, VectorLoadOfStoredBufferIsForwarded) {
  // Region A stores sig_t; region B (fused behind it) reloads it.  The load
  // disappears and B's uses read A's register directly.
  TranslationUnit tu = unit_with_step(
      {vloop(0, 64, 4,
             {load("a_b", "in_a"), store("sig_t", "a_b"), load("t_b", "sig_t"),
              calc("q_b", "vaddq_f32(t_b, t_b)"), store("out_q", "q_b")})},
      {f32_buffer("sig_t", 64)});
  PassStats stats = run_passes(tu, {});
  EXPECT_GE(stats.copies_elided, 1);
  const Stmt& loop = tu.step.body[0];
  for (const Stmt& line : loop.body) {
    EXPECT_EQ(line.text.find("t_b"), std::string::npos)
        << "forwarded variable must be renamed away in: " << line.text;
  }
  // The store to sig_t is now dead (nothing reads the buffer) and the
  // declaration goes with it.
  EXPECT_EQ(stats.buffers_eliminated, 1);
  EXPECT_TRUE(tu.buffers.empty());
  for (const Stmt& line : tu.step.body[0].body) {
    EXPECT_EQ(line.text.find("sig_t"), std::string::npos);
  }
}

TEST(CgirForward, ScalarRemainderReadIsForwarded) {
  Stmt st = Stmt::text_line("sig_t[i] = a_s;");
  st.stores_var = "a_s";
  st.is_store = true;
  st.accesses.push_back({"sig_t", true, true});
  Stmt rd = Stmt::text_line("out_q[i] = sig_t[i] * 2.0f;");
  rd.is_store = true;
  rd.stores_var = "q_s";
  rd.accesses.push_back({"out_q", true, true});
  rd.accesses.push_back({"sig_t", false, true});
  Stmt loop;
  loop.kind = Stmt::Kind::kLoop;
  loop.begin = 0;
  loop.end = 3;
  loop.step = 1;
  loop.fusible = true;
  loop.body = {st, rd};
  TranslationUnit tu = unit_with_step({loop}, {f32_buffer("sig_t", 64)});
  PassStats stats = run_passes(tu, {});
  EXPECT_EQ(tu.step.body[0].body.back().text, "out_q[i] = a_s * 2.0f;");
  EXPECT_EQ(stats.buffers_eliminated, 1);  // sig_t no longer read
}

// ---------------------------------------------------------------------------
// Arena reuse
// ---------------------------------------------------------------------------

TEST(CgirArena, RebindsDisjointLiveRanges) {
  // sig_a is dead before sig_b's first write, so both share one slot sized
  // for the larger of the two.
  Stmt w_a = Stmt::text_line("kernel_a(in_x, sig_a);");
  w_a.accesses.push_back({"sig_a", true, false});
  Stmt r_a = Stmt::text_line("consume_a(sig_a, out_p);");
  r_a.accesses.push_back({"sig_a", false, false});
  r_a.accesses.push_back({"out_p", true, false});
  Stmt w_b = Stmt::text_line("kernel_b(in_y, sig_b);");
  w_b.accesses.push_back({"sig_b", true, false});
  Stmt r_b = Stmt::text_line("consume_b(sig_b, out_q);");
  r_b.accesses.push_back({"sig_b", false, false});
  r_b.accesses.push_back({"out_q", true, false});

  TranslationUnit tu = unit_with_step(
      {w_a, r_a, w_b, r_b},
      {f32_buffer("sig_a", 8), f32_buffer("sig_b", 16)});
  PassOptions options;
  options.reuse_arena = true;
  PassStats stats = run_passes(tu, options);

  ASSERT_EQ(tu.buffers.size(), 1u);
  EXPECT_EQ(tu.buffers[0].name, "buf0");
  EXPECT_EQ(tu.buffers[0].components, 16);
  EXPECT_EQ(stats.buffers_rebound, 2);
  EXPECT_EQ(stats.arena_bytes_saved, (8u + 16u) * 4u - 16u * 4u);
  EXPECT_EQ(tu.step.body[0].text, "kernel_a(in_x, buf0);");
  EXPECT_EQ(tu.step.body[2].text, "kernel_b(in_y, buf0);");
}

TEST(CgirArena, OverlappingRangesKeepSeparateSlots) {
  Stmt w_a = Stmt::text_line("kernel_a(in_x, sig_a);");
  w_a.accesses.push_back({"sig_a", true, false});
  Stmt w_b = Stmt::text_line("kernel_b(in_y, sig_b);");
  w_b.accesses.push_back({"sig_b", true, false});
  Stmt r_both = Stmt::text_line("combine(sig_a, sig_b, out_p);");
  r_both.accesses.push_back({"sig_a", false, false});
  r_both.accesses.push_back({"sig_b", false, false});
  r_both.accesses.push_back({"out_p", true, false});

  TranslationUnit tu = unit_with_step(
      {w_a, w_b, r_both}, {f32_buffer("sig_a", 8), f32_buffer("sig_b", 8)});
  PassOptions options;
  options.reuse_arena = true;
  PassStats stats = run_passes(tu, options);
  EXPECT_EQ(tu.buffers.size(), 2u);
  EXPECT_EQ(stats.arena_bytes_saved, 0u);
}

TEST(CgirArena, IneligibleAndConstBuffersAreUntouched) {
  Stmt w = Stmt::text_line("dly_state[0] = in_x[0];");
  w.accesses.push_back({"dly_state", true, false});
  BufferDecl state = f32_buffer("dly_state", 4, /*eligible=*/false);
  BufferDecl taps;
  taps.name = "taps";
  taps.ctype = "float";
  taps.components = 4;
  taps.elem_bytes = 4;
  taps.is_const = true;
  taps.arena_eligible = true;  // const wins over eligibility
  taps.init_values = "1.0f, 2.0f, 3.0f, 4.0f";
  TranslationUnit tu = unit_with_step({w}, {state, taps});
  PassOptions options;
  options.reuse_arena = true;
  run_passes(tu, options);
  ASSERT_EQ(tu.buffers.size(), 2u);
  EXPECT_EQ(tu.buffers[0].name, "dly_state");
  EXPECT_EQ(tu.buffers[1].name, "taps");
}

}  // namespace
}  // namespace hcg::cgir
