// Unit tests for the batch dataflow graph: region discovery, graph queries,
// subgraph enumeration, convexity/independence, and contracted emission
// order.
#include <gtest/gtest.h>

#include "actors/resolve.hpp"
#include "benchmodels/benchmodels.hpp"
#include "graph/regions.hpp"
#include "model/builder.hpp"
#include "support/error.hpp"

namespace hcg {
namespace {

Model fig4(int n = 8) { return resolved(benchmodels::paper_fig4_model(n)); }

std::vector<BatchRegion> fig4_regions(const Model& m) {
  return find_batch_regions(m, AllOpsSupport());
}

// ---------------------------------------------------------------------------
// Dataflow primitives
// ---------------------------------------------------------------------------

TEST(Dataflow, AddNodeValidatesOperands) {
  Dataflow g(16, 32);
  const int x = g.add_external({0, 0, DataType::kInt32});
  DfgNode good{BatchOp::kAbs, {ValueRef::external(x)}, DataType::kInt32, 0};
  EXPECT_EQ(g.add_node(good), 0);
  DfgNode bad{BatchOp::kAbs, {ValueRef::node(5)}, DataType::kInt32, 0};
  EXPECT_THROW(g.add_node(bad), InternalError);
  DfgNode bad2{BatchOp::kAbs, {ValueRef::external(9)}, DataType::kInt32, 0};
  EXPECT_THROW(g.add_node(bad2), InternalError);
}

TEST(Dataflow, ConsumersAndOutputs) {
  Dataflow g(16, 32);
  const int x = g.add_external({0, 0, DataType::kInt32});
  const int a = g.add_node({BatchOp::kAbs, {ValueRef::external(x)},
                            DataType::kInt32, 0});
  const int b = g.add_node({BatchOp::kNot, {ValueRef::node(a)},
                            DataType::kInt32, 1});
  g.mark_output(b);
  EXPECT_EQ(g.consumers(a), std::vector<int>{b});
  EXPECT_TRUE(g.consumers(b).empty());
  EXPECT_TRUE(g.is_output(b));
  EXPECT_FALSE(g.is_output(a));
  g.mark_output(b);  // idempotent
  EXPECT_EQ(g.outputs().size(), 1u);
}

TEST(Dataflow, OpCostOrdersExpensiveOpsFirst) {
  EXPECT_GT(op_cost(BatchOp::kDiv), op_cost(BatchOp::kMul));
  EXPECT_GT(op_cost(BatchOp::kMul), op_cost(BatchOp::kAdd));
  EXPECT_EQ(op_cost(BatchOp::kSqrt), op_cost(BatchOp::kRecp));
}

// ---------------------------------------------------------------------------
// Region discovery on the Figure 4 model
// ---------------------------------------------------------------------------

TEST(Regions, Fig4FormsOneRegionOfFiveNodes) {
  Model m = fig4();
  auto regions = fig4_regions(m);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].graph.node_count(), 5);
  EXPECT_EQ(regions[0].graph.length(), 8);
  EXPECT_EQ(regions[0].graph.data_bit_width(), 32);
  // Externals: a, b, c, d.
  EXPECT_EQ(regions[0].graph.externals().size(), 4u);
  // Outputs: Shr and Add2 leave the region (feed Outports).
  EXPECT_EQ(regions[0].graph.outputs().size(), 2u);
}

TEST(Regions, Fig4GraphStructureMatchesPaper) {
  Model m = fig4();
  auto regions = fig4_regions(m);
  const BatchRegion& r = regions[0];
  const Dataflow& g = r.graph;

  const int sub = r.node_of.at(m.find_actor("Sub"));
  const int add1 = r.node_of.at(m.find_actor("Add1"));
  const int shr = r.node_of.at(m.find_actor("Shr"));
  const int mul = r.node_of.at(m.find_actor("Mul"));
  const int add2 = r.node_of.at(m.find_actor("Add2"));

  // Sub feeds Add1, Mul and Add2 — three consumers.
  EXPECT_EQ(g.consumers(sub).size(), 3u);
  // Shr's operand is Add1 plus the immediate 1.
  ASSERT_EQ(g.node(shr).operands.size(), 2u);
  EXPECT_EQ(g.node(shr).operands[0], ValueRef::node(add1));
  EXPECT_EQ(g.node(shr).operands[1], ValueRef::immediate(1));
  // Add2 = Sub + Mul.
  EXPECT_EQ(g.node(add2).operands[0], ValueRef::node(sub));
  EXPECT_EQ(g.node(add2).operands[1], ValueRef::node(mul));
}

TEST(Regions, TopLeftNodeFollowsReadiness) {
  Model m = fig4();
  auto regions = fig4_regions(m);
  const Dataflow& g = regions[0].graph;
  std::vector<bool> mapped(static_cast<size_t>(g.node_count()), false);
  // First ready node is Sub (the only node with no node-operands at start
  // that precedes the others in firing order).
  const int first = g.top_left_node(mapped);
  EXPECT_EQ(g.node(first).op, BatchOp::kSub);
  // After mapping everything, -1.
  std::fill(mapped.begin(), mapped.end(), true);
  EXPECT_EQ(g.top_left_node(mapped), -1);
}

TEST(Regions, ExtendSubgraphsFromSubMatchesPaperNarrative) {
  // Paper: "three subgraphs will be extended from the Sub node ... which are
  // Sub-Mul, Sub-Add and Sub" (with max 2 nodes).
  Model m = fig4();
  auto regions = fig4_regions(m);
  const Dataflow& g = regions[0].graph;
  std::vector<bool> mapped(static_cast<size_t>(g.node_count()), false);
  const int sub = g.top_left_node(mapped);

  auto subgraphs = g.extend_subgraphs(sub, mapped, 2);
  // Exactly the paper's three: {Sub, Mul}, {Sub, Add1} and {Sub} —
  // {Sub, Add2} is rejected as non-convex (the path Sub -> Mul -> Add2
  // re-enters through the non-member Mul).
  EXPECT_EQ(subgraphs.size(), 3u);
  int singletons = 0, pairs = 0;
  for (const auto& s : subgraphs) {
    if (s.size() == 1) ++singletons;
    if (s.size() == 2) ++pairs;
    // A unique sink sits last; multi-sink candidates report -1 and are
    // discarded later by the interior-privacy check.
    const int sink = g.sink_of(s);
    EXPECT_TRUE(sink == s.back() || sink == -1);
  }
  EXPECT_EQ(singletons, 1);
  EXPECT_EQ(pairs, 2);
  // Cost ordering: multi-node subgraphs come before the singleton.
  EXPECT_GT(subgraphs.front().size(), 1u);
  EXPECT_EQ(subgraphs.back().size(), 1u);
}

TEST(Regions, InteriorPrivacyRejectsFanoutFusion) {
  // {Sub, Mul}: Sub's value is also needed by Add1 and Add2 outside, so the
  // pair cannot be fused into one instruction.
  Model m = fig4();
  auto regions = fig4_regions(m);
  const BatchRegion& r = regions[0];
  const Dataflow& g = r.graph;
  const int sub = r.node_of.at(m.find_actor("Sub"));
  const int mul = r.node_of.at(m.find_actor("Mul"));
  EXPECT_FALSE(g.interior_values_private({sub, mul}));
  // {Mul, Add2} is fine: Mul feeds only Add2.
  const int add2 = r.node_of.at(m.find_actor("Add2"));
  EXPECT_TRUE(g.interior_values_private({mul, add2}));
}

TEST(Regions, IndependenceRequiresMappedExternalsOnly) {
  Model m = fig4();
  auto regions = fig4_regions(m);
  const BatchRegion& r = regions[0];
  const Dataflow& g = r.graph;
  const int sub = r.node_of.at(m.find_actor("Sub"));
  const int add1 = r.node_of.at(m.find_actor("Add1"));
  const int shr = r.node_of.at(m.find_actor("Shr"));

  std::vector<bool> mapped(static_cast<size_t>(g.node_count()), false);
  // {Add1, Shr} depends on Sub, which is not yet generated.
  EXPECT_FALSE(g.is_independent({add1, shr}, mapped));
  mapped[static_cast<size_t>(sub)] = true;
  EXPECT_TRUE(g.is_independent({add1, shr}, mapped));
}

TEST(Regions, ConvexityDetectsReentrantPaths) {
  Model m = fig4();
  auto regions = fig4_regions(m);
  const BatchRegion& r = regions[0];
  const Dataflow& g = r.graph;
  const int sub = r.node_of.at(m.find_actor("Sub"));
  const int add1 = r.node_of.at(m.find_actor("Add1"));
  const int shr = r.node_of.at(m.find_actor("Shr"));
  const int mul = r.node_of.at(m.find_actor("Mul"));
  const int add2 = r.node_of.at(m.find_actor("Add2"));

  // {Sub, Add2} has a path Sub -> Mul -> Add2 through the non-member Mul.
  EXPECT_FALSE(g.is_convex({sub, add2}));
  EXPECT_TRUE(g.is_convex({sub, mul, add2}));
  EXPECT_TRUE(g.is_convex({add1, shr}));
}

// ---------------------------------------------------------------------------
// Region grouping rules
// ---------------------------------------------------------------------------

TEST(Regions, DifferentLengthsSplitRegions) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kFloat32, Shape({16}));
  PortRef y = b.inport("y", DataType::kFloat32, Shape({8}));
  PortRef a = b.actor("a", "Abs", {x});
  PortRef c = b.actor("c", "Abs", {y});
  b.outport("oa", a);
  b.outport("oc", c);
  Model m = resolved(b.take());
  auto regions = find_batch_regions(m, AllOpsSupport());
  EXPECT_EQ(regions.size(), 2u);
}

TEST(Regions, DifferentBitWidthsSplitRegions) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kInt16, Shape({16}));
  PortRef a = b.actor("a", "Abs", {x});
  PortRef c = b.actor("c", "Cast", {a}, {{"to", "i32"}});  // width change
  PortRef d = b.actor("d", "Abs", {c});
  b.outport("o", d);
  Model m = resolved(b.take());
  auto regions = find_batch_regions(m, AllOpsSupport());
  // The widening Cast cannot join either side; a and d are separate regions.
  for (const auto& r : regions) {
    for (ActorId id : r.actors) {
      EXPECT_NE(m.actor(id).type(), "Cast");
    }
  }
  EXPECT_EQ(regions.size(), 2u);
}

TEST(Regions, SameWidthCastJoinsRegion) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kFloat32, Shape({16}));
  PortRef a = b.actor("a", "Abs", {x});
  PortRef c = b.actor("c", "Cast", {a}, {{"to", "i32"}});  // 32 -> 32 bits
  PortRef d = b.actor("d", "BitNot", {c});
  b.outport("o", d);
  Model m = resolved(b.take());
  auto regions = find_batch_regions(m, AllOpsSupport());
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].actors.size(), 3u);
}

TEST(Regions, UnsupportedOpsAreExcluded) {
  class NoMul final : public OpSupport {
   public:
    bool supports(BatchOp op, DataType in, DataType out) const override {
      return op != BatchOp::kMul && AllOpsSupport().supports(op, in, out);
    }
  };
  Model m = resolved(benchmodels::fir_model(64));  // Mul then Add
  auto regions = find_batch_regions(m, NoMul());
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(m.actor(regions[0].actors[0]).type(), "Add");
}

TEST(Regions, ScalarActorsNeverJoinRegions) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kFloat32, Shape({}));  // scalar
  PortRef a = b.actor("a", "Abs", {x});
  b.outport("o", a);
  Model m = resolved(b.take());
  EXPECT_TRUE(find_batch_regions(m, AllOpsSupport()).empty());
}

TEST(Regions, NonConvexComponentIsSplit) {
  // batch -> intensive -> batch, where the two batch actors are also wired
  // directly: one connected component whose fusion would trap the DCT.
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kFloat32, Shape({16}));
  PortRef a = b.actor("a", "Abs", {x});
  PortRef t = b.actor("t", "DCT", {a});
  PortRef s = b.actor("s", "Add", {a, t});
  b.outport("o", s);
  Model m = resolved(b.take());
  auto regions = find_batch_regions(m, AllOpsSupport());
  // 'a' and 's' must end up in different regions despite being connected.
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_NO_THROW(emission_order(m, regions));
}

// ---------------------------------------------------------------------------
// Emission order
// ---------------------------------------------------------------------------

TEST(EmissionOrder, RegionsEmitAfterProducersBeforeConsumers) {
  Model m = resolved(benchmodels::highpass_model(64));
  auto regions = find_batch_regions(m, AllOpsSupport());
  ASSERT_EQ(regions.size(), 1u);
  auto order = emission_order(m, regions);

  int region_pos = -1, inport_pos = -1, outport_pos = -1;
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i].region == 0) region_pos = static_cast<int>(i);
    if (order[i].actor == m.find_actor("x")) inport_pos = static_cast<int>(i);
    if (order[i].actor == m.find_actor("y")) outport_pos = static_cast<int>(i);
  }
  ASSERT_NE(region_pos, -1);
  EXPECT_LT(inport_pos, region_pos);
  EXPECT_GT(outport_pos, region_pos);
}

TEST(EmissionOrder, CoversEveryActorExactlyOnce) {
  Model m = resolved(benchmodels::paper_fig4_model(16));
  auto regions = find_batch_regions(m, AllOpsSupport());
  auto order = emission_order(m, regions);
  int actors_covered = 0;
  for (const EmissionItem& item : order) {
    if (item.actor != kNoActor) {
      ++actors_covered;
    } else {
      actors_covered += static_cast<int>(
          regions[static_cast<size_t>(item.region)].actors.size());
    }
  }
  EXPECT_EQ(actors_covered, m.actor_count());
}

}  // namespace
}  // namespace hcg
