// Unit tests for the SIMD instruction tables: text format parsing (including
// the paper's §3.3 single-op form), pattern expressions, validation, queries
// and code-template substitution.
#include <gtest/gtest.h>

#include "isa/builtin.hpp"
#include "isa/isa_parse.hpp"
#include "support/error.hpp"

namespace hcg::isa {
namespace {

constexpr const char* kMiniTable = R"(
# comment line
isa mini
width 128
header arm_neon.h
vtype i32 4 int32x4_t
vtype f32 4 float32x4_t
load  i32 O = vld1q_s32(P);
store i32 vst1q_s32(P, V);
dup   i32 O = vdupq_n_s32(C);
load  f32 O = vld1q_f32(P);
store f32 vst1q_f32(P, V);
cvt f32 i32 O = vcvtq_s32_f32(I1);
ins vaddq_s32 i32 Add(I1,I2) :: O = vaddq_s32(I1, I2);
ins vmlaq_s32 i32 Add(Mul(I1,I2),I3) :: O = vmlaq_s32(I3, I1, I2);
ins vhaddq_s32 i32 Shr(Add(I1,I2),#1) :: O = vhaddq_s32(I1, I2);
ins vshrq_n_s32 i32 Shr(I1,IMM) :: O = vshrq_n_s32(I1, IMM);
ins vmulq_n_s32 i32 MulC(I1,C) :: O = vmulq_n_s32(I1, C);
Graph: Sub, i32, 4, I1, I2, O1 ; Code: O1 = vsubq_s32(I1, I2);
)";

VectorIsa mini() { return parse_isa(kMiniTable); }

// ---------------------------------------------------------------------------
// parsing
// ---------------------------------------------------------------------------

TEST(IsaParse, ReadsHeaderFields) {
  VectorIsa isa = mini();
  EXPECT_EQ(isa.name, "mini");
  EXPECT_EQ(isa.width_bits, 128);
  EXPECT_EQ(isa.header, "arm_neon.h");
  EXPECT_FALSE(isa.simulated);
  EXPECT_EQ(isa.vtypes.size(), 2u);
  EXPECT_EQ(isa.instructions.size(), 6u);
}

TEST(IsaParse, SingleOpPattern) {
  VectorIsa isa = mini();
  const Instruction& add = isa.instructions[0];
  EXPECT_EQ(add.name, "vaddq_s32");
  EXPECT_EQ(add.type, DataType::kInt32);
  EXPECT_EQ(add.lanes, 4);
  EXPECT_EQ(add.node_count(), 1);
  EXPECT_EQ(add.depth(), 1);
  EXPECT_EQ(add.input_slots, 2);
  EXPECT_EQ(add.root_op(), BatchOp::kAdd);
}

TEST(IsaParse, NestedPattern) {
  VectorIsa isa = mini();
  const Instruction& mla = isa.instructions[1];
  EXPECT_EQ(mla.node_count(), 2);
  EXPECT_EQ(mla.depth(), 2);
  EXPECT_EQ(mla.input_slots, 3);
  EXPECT_EQ(mla.root_op(), BatchOp::kAdd);
  // Root's first arg is the nested Mul.
  ASSERT_EQ(mla.nodes[0].args.size(), 2u);
  EXPECT_EQ(mla.nodes[0].args[0].kind, PatternArg::Kind::kChild);
  EXPECT_EQ(mla.nodes[1].op, BatchOp::kMul);
}

TEST(IsaParse, FixedAndVariableImmediates) {
  VectorIsa isa = mini();
  const Instruction& hadd = isa.instructions[2];
  EXPECT_EQ(hadd.nodes[0].args[1].kind, PatternArg::Kind::kFixedImm);
  EXPECT_EQ(hadd.nodes[0].args[1].imm, 1);
  const Instruction& shr = isa.instructions[3];
  EXPECT_EQ(shr.nodes[0].args[1].kind, PatternArg::Kind::kAnyImm);
}

TEST(IsaParse, ScalarSlot) {
  VectorIsa isa = mini();
  const Instruction& mulc = isa.instructions[4];
  EXPECT_EQ(mulc.nodes[0].args[1].kind, PatternArg::Kind::kScalar);
}

TEST(IsaParse, PaperFormLine) {
  VectorIsa isa = mini();
  const Instruction& sub = isa.instructions[5];
  EXPECT_EQ(sub.name, "vsubq_s32");
  EXPECT_EQ(sub.root_op(), BatchOp::kSub);
  EXPECT_EQ(sub.lanes, 4);
  // O1 normalized to O in the template.
  EXPECT_EQ(sub.code, "O = vsubq_s32(I1, I2);");
}

TEST(IsaParse, CvtAndIoCode) {
  VectorIsa isa = mini();
  ASSERT_NE(isa.find_cvt(DataType::kFloat32, DataType::kInt32), nullptr);
  EXPECT_EQ(isa.find_cvt(DataType::kInt32, DataType::kFloat32), nullptr);
  ASSERT_NE(isa.find_load(DataType::kInt32), nullptr);
  EXPECT_EQ(isa.find_load(DataType::kInt32)->code, "O = vld1q_s32(P);");
  ASSERT_NE(isa.find_dup(DataType::kInt32), nullptr);
  EXPECT_EQ(isa.find_dup(DataType::kFloat64), nullptr);
}

// ---------------------------------------------------------------------------
// parse errors
// ---------------------------------------------------------------------------

TEST(IsaParse, RejectsMissingName) {
  EXPECT_THROW(parse_isa("width 128\n"), ParseError);
}

TEST(IsaParse, RejectsUnknownDirective) {
  EXPECT_THROW(parse_isa("isa x\nfrobnicate y\n"), ParseError);
}

TEST(IsaParse, RejectsInsBeforeVtype) {
  EXPECT_THROW(parse_isa("isa x\nins v i32 Add(I1,I2) :: O = v(I1,I2);\n"),
               ParseError);
}

TEST(IsaParse, RejectsBadPattern) {
  const char* prefix =
      "isa x\nvtype i32 4 t\nload i32 O=l(P);\nstore i32 s(P,V);\n";
  EXPECT_THROW(parse_isa(std::string(prefix) +
                         "ins v i32 Add(I1 :: O = v(I1);\n"),
               ParseError);
  EXPECT_THROW(parse_isa(std::string(prefix) +
                         "ins v i32 Frob(I1,I2) :: O = v(I1,I2);\n"),
               ParseError);
  EXPECT_THROW(parse_isa(std::string(prefix) + "ins v i32 Add(I1,I2)\n"),
               ParseError);
}

TEST(IsaParse, ErrorsCarryLineNumbers) {
  try {
    parse_isa("isa x\nwidth 128\nbadline here\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(IsaValidate, RejectsInstructionWithoutLoadStore) {
  const char* text =
      "isa x\nvtype i32 4 t\n"
      "ins v i32 Add(I1,I2) :: O = v(I1, I2);\n";
  EXPECT_THROW(parse_isa(text), ParseError);
}

TEST(IsaValidate, RejectsScalarSlotOnNonScalarOp) {
  const char* text =
      "isa x\nvtype i32 4 t\nload i32 O=l(P);\nstore i32 s(P,V);\n"
      "ins v i32 Add(I1,C) :: O = v(I1, C);\n";
  EXPECT_THROW(parse_isa(text), ParseError);
}

// ---------------------------------------------------------------------------
// queries
// ---------------------------------------------------------------------------

TEST(IsaQuery, CandidatesSortedByCost) {
  VectorIsa isa = mini();
  auto adds = isa.candidates(BatchOp::kAdd, DataType::kInt32);
  ASSERT_EQ(adds.size(), 2u);  // vmlaq (cost 3) before vaddq (cost 1)
  EXPECT_EQ(adds[0]->name, "vmlaq_s32");
  EXPECT_EQ(adds[1]->name, "vaddq_s32");
  EXPECT_TRUE(isa.candidates(BatchOp::kAdd, DataType::kInt8).empty());
}

TEST(IsaQuery, MaxPatternBounds) {
  VectorIsa isa = mini();
  EXPECT_EQ(isa.max_pattern_nodes(), 2);
  EXPECT_EQ(isa.max_pattern_depth(), 2);
}

TEST(IsaQuery, SupportsReflectsSingleNodeInstructions) {
  VectorIsa isa = mini();
  EXPECT_TRUE(isa.supports(BatchOp::kAdd, DataType::kInt32, DataType::kInt32));
  EXPECT_TRUE(isa.supports(BatchOp::kShr, DataType::kInt32, DataType::kInt32));
  // Mul only exists inside the vmla pattern — not as a single instruction.
  EXPECT_FALSE(isa.supports(BatchOp::kMul, DataType::kInt32, DataType::kInt32));
  EXPECT_TRUE(
      isa.supports(BatchOp::kCast, DataType::kFloat32, DataType::kInt32));
  EXPECT_FALSE(
      isa.supports(BatchOp::kCast, DataType::kInt32, DataType::kFloat32));
}

TEST(IsaQuery, LanesPerType) {
  VectorIsa isa = mini();
  EXPECT_EQ(isa.lanes(DataType::kInt32), 4);
  EXPECT_EQ(isa.lanes(DataType::kInt64), 0);
}

// ---------------------------------------------------------------------------
// template substitution / literals
// ---------------------------------------------------------------------------

TEST(Substitute, ReplacesWholeWordsOnly) {
  const std::string out = substitute_tokens(
      "O = vmlaq_s32(I3, I1, I2); /* I1x */",
      {{"O", "int32x4_t r"}, {"I1", "a"}, {"I2", "b"}, {"I3", "c"}});
  EXPECT_EQ(out, "int32x4_t r = vmlaq_s32(c, a, b); /* I1x */");
}

TEST(Substitute, LeavesUnknownWordsAlone) {
  EXPECT_EQ(substitute_tokens("foo(BAR)", {{"X", "y"}}), "foo(BAR)");
}

TEST(ScalarLiteral, FormatsPerType) {
  EXPECT_EQ(scalar_literal(DataType::kInt32, 7.0), "7");
  EXPECT_EQ(scalar_literal(DataType::kInt32, -3.0), "-3");
  const std::string f = scalar_literal(DataType::kFloat32, 0.5);
  EXPECT_EQ(f.back(), 'f');
  EXPECT_NE(f.find("0.5"), std::string::npos);
  const std::string d = scalar_literal(DataType::kFloat64, 1.25);
  EXPECT_NE(d.find("1.25"), std::string::npos);
}

// ---------------------------------------------------------------------------
// built-in tables
// ---------------------------------------------------------------------------

TEST(Builtin, AllTablesParseAndValidate) {
  for (const std::string& name : builtin_names()) {
    const VectorIsa& isa = builtin(name);
    EXPECT_EQ(isa.name, name);
    EXPECT_FALSE(isa.instructions.empty()) << name;
    EXPECT_NO_THROW(isa.validate()) << name;
  }
  EXPECT_THROW(builtin("mips_msa"), Error);
  EXPECT_THROW(builtin_text("mips_msa"), Error);
}

TEST(Builtin, NeonSimIsSimulatedTwinOfNeon) {
  const VectorIsa& neon = builtin("neon");
  const VectorIsa& sim = builtin("neon_sim");
  EXPECT_FALSE(neon.simulated);
  EXPECT_TRUE(sim.simulated);
  EXPECT_EQ(sim.header, "hcg_neon_sim.h");
  EXPECT_EQ(neon.instructions.size(), sim.instructions.size());
  EXPECT_EQ(neon.width_bits, sim.width_bits);
}

TEST(Builtin, WidthsAndCompileFlags) {
  EXPECT_EQ(builtin("neon").width_bits, 128);
  EXPECT_EQ(builtin("sse").width_bits, 128);
  EXPECT_EQ(builtin("avx2").width_bits, 256);
  EXPECT_NE(builtin("avx2").compile_flags.find("-mavx2"), std::string::npos);
  EXPECT_NE(builtin("sse").compile_flags.find("-msse4.2"), std::string::npos);
}

TEST(Builtin, TablesCoverTheHeadlineCompoundInstructions) {
  for (const char* name : {"neon", "sse", "avx2"}) {
    const VectorIsa& isa = builtin(name);
    EXPECT_GE(isa.candidates(BatchOp::kAdd, DataType::kInt32).size(), 2u)
        << name << " needs an integer multiply-add pattern";
    bool has_hadd = false;
    for (const Instruction& ins : isa.instructions) {
      if (ins.type == DataType::kInt32 && ins.root_op() == BatchOp::kShr &&
          ins.node_count() == 2) {
        has_hadd = true;
      }
    }
    EXPECT_TRUE(has_hadd) << name << " needs a halving-add pattern";
  }
}

TEST(Builtin, LanesMatchWidthOverBitWidth) {
  for (const std::string& name : builtin_names()) {
    const VectorIsa& isa = builtin(name);
    for (const VType& v : isa.vtypes) {
      EXPECT_EQ(v.lanes, isa.width_bits / bit_width(v.type))
          << name << "/" << short_name(v.type);
    }
  }
}

TEST(Builtin, EveryInstructionTemplateMentionsItsSlots) {
  // Each input slot I1..In declared by a pattern must appear in the code
  // template (otherwise an operand would be silently dropped).
  for (const std::string& name : builtin_names()) {
    const VectorIsa& isa = builtin(name);
    for (const Instruction& ins : isa.instructions) {
      for (int slot = 1; slot <= ins.input_slots; ++slot) {
        const std::string token = "I" + std::to_string(slot);
        const std::string marked =
            substitute_tokens(ins.code, {{token, "@@"}});
        EXPECT_NE(marked.find("@@"), std::string::npos)
            << name << "/" << ins.name << " drops " << token;
      }
      EXPECT_NE(substitute_tokens(ins.code, {{"O", "@@"}}).find("@@"),
                std::string::npos)
          << name << "/" << ins.name << " never assigns O";
    }
  }
}

}  // namespace
}  // namespace hcg::isa
