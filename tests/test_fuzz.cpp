// Tests for the differential fuzzing subsystem (docs/FUZZING.md): generator
// determinism and guardrails, the cross-check harness contracts, the
// counterexample minimizer, the campaign driver with its hcg-fuzz-v1 report,
// the fault-site catalog anti-drift check, and the hcgc fuzz/faults CLI.
//
// The heavyweight acceptance run (500 seeds over the full matrix) is gated
// behind HCG_FUZZ_FULL=1 — CI's fuzz-smoke job runs a smaller campaign
// through the hcgc CLI instead.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "actors/resolve.hpp"
#include "analysis/linter.hpp"
#include "fuzz/campaign.hpp"
#include "fuzz/differential.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/minimize.hpp"
#include "model/loader.hpp"
#include "obs/json.hpp"
#include "support/error.hpp"
#include "support/faults.hpp"
#include "support/fileio.hpp"
#include "support/strings.hpp"

namespace hcg::fuzz {
namespace {

/// One hcg cell plus the scalar baselines — enough cross-checking to be a
/// real differential test at a fraction of the full matrix's cost.
HarnessConfig quick_config() {
  HarnessConfig config;
  config.isas = {"neon_sim"};
  config.opt_levels = {1};
  config.baselines = true;
  return config;
}

/// Arms a fault spec and guarantees a disarmed registry afterwards.
class ArmedFaults {
 public:
  explicit ArmedFaults(std::string_view spec) {
    faults::Registry::instance().configure(spec);
  }
  ~ArmedFaults() { faults::Registry::instance().clear(); }
};

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

TEST(FuzzGenerator, SameSeedSameBytes) {
  for (std::uint64_t seed : {1ull, 7ull, 99ull, 12345ull}) {
    const std::string a = model_to_xml(generate_model(seed));
    const std::string b = model_to_xml(generate_model(seed));
    EXPECT_EQ(a, b) << "seed " << seed << " is not deterministic";
  }
  EXPECT_NE(model_to_xml(generate_model(1)), model_to_xml(generate_model(2)));
}

TEST(FuzzGenerator, ManySeedsResolveAndAreLintClean) {
  for (std::uint64_t seed = 1; seed <= 80; ++seed) {
    Model model = generate_model(seed);
    ASSERT_NO_THROW((void)resolved(model)) << "seed " << seed;
    // The corpus gate runs `hcgc lint --Werror` over minimized reproducers;
    // generated models must already hold that bar (no dead actors, no
    // structural defects), or shrunk versions of them could not.
    analysis::DiagnosticEngine diags;
    analysis::LintOptions options;
    options.remarks = false;
    analysis::lint_model(model, options, diags);
    EXPECT_EQ(diags.count(analysis::Severity::kError), 0)
        << "seed " << seed << ": " << diags.render("fuzz");
    EXPECT_EQ(diags.count(analysis::Severity::kWarning), 0)
        << "seed " << seed << ": " << diags.render("fuzz");
  }
}

TEST(FuzzGenerator, CoversTheGrammar) {
  std::set<std::string> types;
  bool wide = false, sub_simd = false, matrix = false, scalar = false;
  std::set<std::string> dtypes;
  for (std::uint64_t seed = 1; seed <= 150; ++seed) {
    const Model model = generate_model(seed);
    for (const Actor& actor : model.actors()) {
      types.insert(actor.type());
      if (actor.has_param("dtype")) dtypes.insert(actor.param("dtype"));
      if (actor.has_param("shape")) {
        const Shape shape = Shape::parse(actor.param("shape"));
        if (shape.is_scalar()) scalar = true;
        if (shape.rank() == 1 && shape.dims[0] >= 32) wide = true;
        if (shape.rank() == 1 && shape.dims[0] <= 3) sub_simd = true;
        if (shape.rank() == 2) matrix = true;
      }
    }
  }
  // Every structural family the resolver accepts must appear in the pool.
  for (const char* required :
       {"Add", "Mul", "Abd", "Shl", "Cast", "Switch", "UnitDelay", "Gain",
        "Constant", "Inport", "Outport"}) {
    EXPECT_TRUE(types.count(required)) << "grammar never emits " << required;
  }
  // At least one intensive family must appear.
  EXPECT_TRUE(types.count("FFT") || types.count("DCT") ||
              types.count("Conv") || types.count("MatMul"))
      << "grammar never emits an intensive actor";
  EXPECT_TRUE(wide) << "no above-threshold vector widths";
  EXPECT_TRUE(sub_simd) << "no sub-SIMD-threshold widths";
  EXPECT_TRUE(matrix) << "no matrix shapes";
  EXPECT_TRUE(scalar) << "no scalar signals";
  EXPECT_GE(dtypes.size(), 6u) << "dtype coverage collapsed";
}

TEST(FuzzGenerator, RespectsActorBudget) {
  GeneratorConfig config;
  config.max_actors = 6;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Model model = generate_model(seed, config);
    // Finalization may add Outports past the budget, but the graph stays
    // within the same order of magnitude.
    EXPECT_LE(model.actor_count(), 4 * config.max_actors) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Differential harness
// ---------------------------------------------------------------------------

TEST(FuzzDifferential, TensorComparisonFlagsIntsExactlyToleratesFloatNoise) {
  Tensor a(DataType::kInt32, Shape{4});
  Tensor b(DataType::kInt32, Shape{4});
  for (int i = 0; i < 4; ++i) a.set_int(i, 10 + i), b.set_int(i, 10 + i);
  std::string why;
  EXPECT_TRUE(tensors_close(a, b, &why));
  b.set_int(2, 13);
  EXPECT_FALSE(tensors_close(a, b, &why));
  EXPECT_NE(why.find("element 2"), std::string::npos) << why;

  Tensor x(DataType::kFloat32, Shape{2});
  Tensor y(DataType::kFloat32, Shape{2});
  x.set_double(0, 100.0);
  y.set_double(0, 100.05);  // inside the relative band
  EXPECT_TRUE(tensors_close(x, y, &why));
  y.set_double(0, 112.0);  // way outside
  EXPECT_FALSE(tensors_close(x, y, &why));
}

TEST(FuzzDifferential, CleanSeedsProduceNoFindings) {
  const HarnessConfig config = quick_config();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const SeedResult result = run_seed(seed, config);
    EXPECT_GE(result.variants_run, 4);
    for (const Finding& f : result.findings) {
      ADD_FAILURE() << "seed " << seed << ": " << f.signature << " — "
                    << f.detail;
    }
  }
}

TEST(FuzzDifferential, FaultSweepAcceptsCleanDegradation) {
#ifdef HCG_DISABLE_FAULTS
  GTEST_SKIP() << "fault probes compiled to no-ops";
#endif
  HarnessConfig config = quick_config();
  config.baselines = false;
  config.sweep_faults = true;
  const SeedResult result = run_seed(2, config);
  // 1 clean cell + one sweep cell per catalog site (cgir.pass included
  // because ctest exports HCG_VERIFY=1).
  EXPECT_GT(result.variants_run, 1);
  for (const Finding& f : result.findings) {
    ADD_FAILURE() << f.signature << " — " << f.detail;
  }
}

TEST(FuzzDifferential, ArmedMiscompileIsDetected) {
#ifdef HCG_DISABLE_FAULTS
  GTEST_SKIP() << "fault probes compiled to no-ops";
#endif
  // The acceptance drill: a deliberately-armed pass corruption must surface
  // as a finding (the verifier runs under ctest's HCG_VERIFY=1).
  ArmedFaults armed("cgir.pass:fuse_loops=fail");
  HarnessConfig config = quick_config();
  config.baselines = false;
  const std::uint64_t seed = 3;
  const Model model = generate_model(seed, config.generator);
  const std::vector<Finding> findings = check_model(model, seed, config);
  ASSERT_FALSE(findings.empty()) << "sabotaged pass went unnoticed";
  bool caught = false;
  for (const Finding& f : findings) {
    caught |= f.signature == "verifier-reject:hcg/neon_sim/O1:fuse_loops";
  }
  EXPECT_TRUE(caught) << "first finding: " << findings.front().signature
                      << " — " << findings.front().detail;
}

TEST(FuzzDifferential, UnsoundRangeAnalysisIsDetected) {
#ifdef HCG_DISABLE_FAULTS
  GTEST_SKIP() << "fault probes compiled to no-ops";
#endif
  // The range-soundness drill: corrupting the predicted intervals (the
  // analysis.range probe collapses them to empty) must surface as a
  // kRangeUnsound finding — proof the cross-check can actually fire.
  ArmedFaults armed("analysis.range=fail");
  HarnessConfig config = quick_config();
  config.baselines = false;
  const std::uint64_t seed = 1;
  const Model model = generate_model(seed, config.generator);
  const std::vector<Finding> findings = check_model(model, seed, config);
  bool caught = false;
  for (const Finding& f : findings) {
    caught |= f.outcome == Outcome::kRangeUnsound &&
              f.signature == "range-unsound:range/O0";
  }
  EXPECT_TRUE(caught) << "corrupted intervals went unnoticed";
}

// ---------------------------------------------------------------------------
// Minimizer
// ---------------------------------------------------------------------------

TEST(FuzzMinimize, ShrinksArmedMiscompileToTinyReproducerAndIsIdempotent) {
#ifdef HCG_DISABLE_FAULTS
  GTEST_SKIP() << "fault probes compiled to no-ops";
#endif
  ArmedFaults armed("cgir.pass:fuse_loops=fail");
  HarnessConfig config = quick_config();
  config.baselines = false;
  const std::uint64_t seed = 3;
  const Model original = generate_model(seed, config.generator);
  std::vector<Finding> findings = check_model(original, seed, config);
  ASSERT_FALSE(findings.empty());
  const Finding& finding = findings.front();

  const ReproduceFn reproduces = signature_reproducer(config, finding);
  ASSERT_TRUE(reproduces(original)) << "original must reproduce its finding";

  MinimizeStats stats;
  const Model small = minimize_model(original, reproduces, &stats);
  EXPECT_LE(small.actor_count(), 6)
      << "reproducer still has " << small.actor_count() << " actors";
  EXPECT_LT(small.actor_count(), original.actor_count());
  EXPECT_TRUE(reproduces(small)) << "minimized model lost the signature";
  EXPECT_GT(stats.accepted, 0);

  // Idempotence: a fixpoint shrinks no further.
  const Model again = minimize_model(small, reproduces, nullptr);
  EXPECT_EQ(model_to_xml(again), model_to_xml(small));

  // Soundness: the reproducer still resolves and stays lint-clean, so the
  // corpus gate can run `hcgc lint --Werror` over it.
  Model copy = small;
  analysis::DiagnosticEngine diags;
  analysis::LintOptions options;
  options.remarks = false;
  analysis::lint_model(copy, options, diags);
  EXPECT_EQ(diags.count(analysis::Severity::kError), 0)
      << diags.render("reproducer");
  EXPECT_EQ(diags.count(analysis::Severity::kWarning), 0)
      << diags.render("reproducer");
}

// ---------------------------------------------------------------------------
// Campaign driver
// ---------------------------------------------------------------------------

TEST(FuzzCampaign, CleanCampaignReportsOk) {
  CampaignConfig config;
  config.seed_start = 1;
  config.seeds = 2;
  config.harness = quick_config();
  const CampaignResult result = run_campaign(config);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.seeds_run, 2);
  ASSERT_TRUE(obs::json_valid(result.report_json)) << result.report_json;
  const obs::JsonValue report = obs::json_parse(result.report_json);
  EXPECT_EQ(report.at("schema").string, "hcg-fuzz-v1");
  EXPECT_TRUE(report.at("ok").boolean);
  EXPECT_TRUE(report.at("findings").array.empty());
}

TEST(FuzzCampaign, ArmedCampaignWritesMinimizedReproducerAndReport) {
#ifdef HCG_DISABLE_FAULTS
  GTEST_SKIP() << "fault probes compiled to no-ops";
#endif
  ArmedFaults armed("cgir.pass:fuse_loops=fail");
  TempDir dir;
  CampaignConfig config;
  config.seed_start = 3;
  config.seeds = 1;
  config.harness = quick_config();
  config.harness.baselines = false;
  config.max_minimized = 1;
  config.corpus_dir = (dir.path() / "corpus").string();
  config.report_path = (dir.path() / "report.json").string();

  const CampaignResult result = run_campaign(config);
  ASSERT_FALSE(result.ok());
  const CampaignFinding& f = result.findings.front();
  EXPECT_EQ(f.first.signature, "verifier-reject:hcg/neon_sim/O1:fuse_loops");
  EXPECT_GE(f.minimized_actors, 1);
  EXPECT_LE(f.minimized_actors, 6);

  // The reproducer landed (atomically) in the corpus and round-trips.
  ASSERT_FALSE(f.reproducer.empty());
  EXPECT_TRUE(std::filesystem::exists(f.reproducer));
  Model replay = load_model_file(f.reproducer);
  EXPECT_EQ(replay.actor_count(), f.minimized_actors);
  EXPECT_NO_THROW((void)resolved(replay));

  // The on-disk report matches the in-memory one and names the reproducer.
  const std::string on_disk = read_file(config.report_path);
  EXPECT_EQ(on_disk, result.report_json);
  const obs::JsonValue report = obs::json_parse(on_disk);
  EXPECT_FALSE(report.at("ok").boolean);
  EXPECT_EQ(report.at("findings").array.at(0).at("reproducer").string,
            f.reproducer);
}

// ---------------------------------------------------------------------------
// Fault-site catalog stays in sync with the probes in the source tree
// ---------------------------------------------------------------------------

TEST(FaultSites, CatalogMatchesProbesInSource) {
  // Every literal probe site in src/ and bench/ must appear in
  // faults::site_catalog() and vice versa, so HCG_FAULTS=list and
  // `hcgc faults` never drift from the code.
  std::set<std::string> in_source;
  const std::filesystem::path root(HCG_REPO_ROOT);
  for (const char* subdir : {"src", "bench"}) {
    for (const auto& entry :
         std::filesystem::recursive_directory_iterator(root / subdir)) {
      const std::string ext = entry.path().extension().string();
      if (ext != ".cpp" && ext != ".hpp") continue;
      const std::string text = read_file(entry.path());
      for (const std::string& call : {std::string("probe(\""),
                                      std::string("raise_if_armed(\"")}) {
        std::size_t at = 0;
        while ((at = text.find(call, at)) != std::string::npos) {
          const std::size_t begin = at + call.size();
          const std::size_t end = text.find('"', begin);
          ASSERT_NE(end, std::string::npos);
          in_source.insert(text.substr(begin, end - begin));
          at = end;
        }
      }
    }
  }
  std::set<std::string> in_catalog;
  for (const faults::SiteInfo& site : faults::site_catalog()) {
    in_catalog.insert(std::string(site.site));
  }
  EXPECT_EQ(in_source, in_catalog)
      << "fault-site catalog and source probes drifted apart";
  EXPECT_FALSE(in_catalog.empty());
}

// ---------------------------------------------------------------------------
// CLI
// ---------------------------------------------------------------------------

struct CliResult {
  int exit_code;
  std::string output;
};

CliResult run_hcgc(const std::string& env, const std::string& args) {
  TempDir dir;
  const auto out_path = dir.path() / "out.txt";
  const std::string cmd = (env.empty() ? "" : "env " + env + " ") +
                          std::string(HCG_HCGC_PATH) + " " + args + " > " +
                          out_path.string() + " 2>&1";
  const int rc = std::system(cmd.c_str());
  std::string output;
  try {
    output = read_file(out_path);
  } catch (const Error&) {
  }
  return CliResult{rc == -1 ? -1 : WEXITSTATUS(rc), output};
}

TEST(FuzzCli, FaultsSubcommandPrintsTheCatalog) {
  const CliResult r = run_hcgc("", "faults");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  for (const faults::SiteInfo& site : faults::site_catalog()) {
    EXPECT_NE(r.output.find(site.site), std::string::npos)
        << "missing site " << site.site << " in:\n"
        << r.output;
  }
}

TEST(FuzzCli, CleanCampaignExitsZero) {
  const CliResult r = run_hcgc(
      "", "fuzz --seeds 2 --seed 1 --isa neon_sim -O1 --no-baselines");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("\"schema\":\"hcg-fuzz-v1\""), std::string::npos)
      << r.output;
}

TEST(FuzzCli, CounterexampleExitsTen) {
#ifdef HCG_DISABLE_FAULTS
  GTEST_SKIP() << "fault probes compiled to no-ops";
#endif
  TempDir dir;
  const std::string corpus = (dir.path() / "corpus").string();
  const CliResult r =
      run_hcgc("HCG_FAULTS=cgir.pass:fuse_loops=fail",
               "fuzz --seeds 1 --seed 3 --isa neon_sim -O1 --no-baselines "
               "--corpus " + corpus);
  EXPECT_EQ(r.exit_code, 10) << r.output;
  EXPECT_NE(r.output.find("verifier-reject:hcg/neon_sim/O1:fuse_loops"),
            std::string::npos)
      << r.output;
  EXPECT_FALSE(std::filesystem::is_empty(corpus)) << r.output;
}

TEST(FuzzCli, RejectsUnknownIsaName) {
  const CliResult r = run_hcgc("", "fuzz --seeds 1 --isa not_an_isa");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("built-in isa"), std::string::npos) << r.output;
}

// ---------------------------------------------------------------------------
// Full acceptance campaign (expensive — opt in with HCG_FUZZ_FULL=1)
// ---------------------------------------------------------------------------

TEST(FuzzFull, FiveHundredSeedsZeroFindings) {
  const char* env = std::getenv("HCG_FUZZ_FULL");
  if (env == nullptr || *env == '\0' || std::string_view(env) == "0") {
    GTEST_SKIP() << "set HCG_FUZZ_FULL=1 to run the 500-seed campaign";
  }
  CampaignConfig config;
  config.seed_start = 1;
  config.seeds = 500;
  config.minimize = false;  // report everything, shrink nothing
  const CampaignResult result = run_campaign(config);
  EXPECT_EQ(result.seeds_run, 500);
  for (const CampaignFinding& f : result.findings) {
    ADD_FAILURE() << f.first.signature << " x" << f.count << " (seed "
                  << f.first.seed << "): " << f.first.detail;
  }
}

}  // namespace
}  // namespace hcg::fuzz
