// Unit tests for the code generators: emitted source structure, tool
// differentiation (unrolling / loops / scattered SIMD / fused regions),
// expression folding, buffer reuse, and metadata.
#include <gtest/gtest.h>

#include "benchmodels/benchmodels.hpp"
#include "codegen/generator.hpp"
#include "isa/builtin.hpp"
#include "model/builder.hpp"

namespace hcg::codegen {
namespace {

int count_occurrences(const std::string& text, const std::string& needle) {
  int count = 0;
  size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

// ---------------------------------------------------------------------------
// ABI & structure
// ---------------------------------------------------------------------------

TEST(Codegen, EmitsTheFixedAbi) {
  auto gen = make_dfsynth_generator();
  GeneratedCode code = gen->generate(benchmodels::fir_model(16));
  EXPECT_EQ(code.init_symbol, "fir_bench_init");
  EXPECT_EQ(code.step_symbol, "fir_bench_step");
  EXPECT_NE(code.source.find("void fir_bench_init(void)"), std::string::npos);
  EXPECT_NE(code.source.find(
                "void fir_bench_step(const void* const* inputs, "
                "void* const* outputs)"),
            std::string::npos);
}

TEST(Codegen, BindsPortsInDeclarationOrder) {
  auto gen = make_dfsynth_generator();
  GeneratedCode code = gen->generate(benchmodels::fir_model(16));
  EXPECT_NE(code.source.find("inputs[0]"), std::string::npos);
  EXPECT_NE(code.source.find("inputs[1]"), std::string::npos);
  EXPECT_NE(code.source.find("outputs[0]"), std::string::npos);
}

TEST(Codegen, ConstantsBecomeStaticConstArrays) {
  auto gen = make_dfsynth_generator();
  GeneratedCode code = gen->generate(benchmodels::fir_model(16));
  EXPECT_NE(code.source.find("static const int32_t sig_taps[16] = {"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Tool differentiation on batch actors
// ---------------------------------------------------------------------------

TEST(Codegen, DfsynthEmitsOneLoopPerBatchActor) {
  auto gen = make_dfsynth_generator();
  GeneratedCode code = gen->generate(benchmodels::fir_model(64));
  // Two batch actors -> two scalar loops; no SIMD anywhere.
  EXPECT_EQ(count_occurrences(code.source, "for (int i = 0; i < 64; ++i)"), 2);
  EXPECT_TRUE(code.simd_instructions.empty());
  EXPECT_EQ(code.source.find("vmlaq"), std::string::npos);
  EXPECT_EQ(code.compile_flags, "");
}

TEST(Codegen, SimulinkUnrollsSmallArrays) {
  auto gen = make_simulink_generator();
  GeneratedCode code = gen->generate(benchmodels::fir_model(8));
  // Figure 2 style: one statement per element, no loop.  (The Mul output
  // lands in a reused buffer, hence the buf-name-agnostic check.)
  EXPECT_EQ(code.source.find("for (int i"), std::string::npos);
  EXPECT_NE(code.source.find("[7] = "), std::string::npos);
}

TEST(Codegen, SimulinkFallsBackToLoopsAboveThreshold) {
  auto gen = make_simulink_generator();
  GeneratedCode code = gen->generate(benchmodels::fir_model(256));
  EXPECT_NE(code.source.find("for (int i = 0; i < 256; ++i)"),
            std::string::npos);
  EXPECT_TRUE(code.simd_instructions.empty());
}

TEST(Codegen, SimulinkScatteredModeVectorizesPerActor) {
  const isa::VectorIsa& sse = isa::builtin("sse");
  auto gen = make_simulink_generator(&sse);
  GeneratedCode code = gen->generate(benchmodels::fir_model(64));
  // Two separate vector loops (one per actor), not a fused one: the Mul
  // result goes through memory.
  EXPECT_EQ(count_occurrences(code.source, "for (int i = 0; i < 64; i += 4)"),
            2);
  EXPECT_EQ(code.simd_instructions,
            (std::vector<std::string>{"mulld", "addd"}));
  EXPECT_EQ(code.fused_regions, 0);
  EXPECT_NE(code.compile_flags.find("-msse4.2"), std::string::npos);
}

TEST(Codegen, HcgFusesTheRegionIntoOneLoop) {
  auto gen = make_hcg_generator(isa::builtin("neon_sim"));
  GeneratedCode code = gen->generate(benchmodels::fir_model(64));
  EXPECT_EQ(count_occurrences(code.source, "for (int i = 0; i < 64; i += 4)"),
            1);
  EXPECT_EQ(code.simd_instructions, std::vector<std::string>{"vmlaq_s32"});
  EXPECT_EQ(code.fused_regions, 1);
  EXPECT_TRUE(code.needs_neon_sim);
  EXPECT_NE(code.source.find("#include \"hcg_neon_sim.h\""),
            std::string::npos);
}

TEST(Codegen, HcgOnRealNeonIncludesArmHeader) {
  auto gen = make_hcg_generator(isa::builtin("neon"));
  GeneratedCode code = gen->generate(benchmodels::fir_model(64));
  EXPECT_FALSE(code.needs_neon_sim);
  EXPECT_NE(code.source.find("#include <arm_neon.h>"), std::string::npos);
}

TEST(Codegen, RegionInteriorSignalsGetNoBuffers) {
  auto hcg = make_hcg_generator(isa::builtin("neon_sim"));
  GeneratedCode fused = hcg->generate(benchmodels::highpass_model(64));
  // d, m, s live in registers; only the region output and constants remain.
  EXPECT_EQ(fused.source.find("sig_d["), std::string::npos);
  EXPECT_EQ(fused.source.find("sig_m["), std::string::npos);
  auto df = make_dfsynth_generator();
  GeneratedCode loops = df->generate(benchmodels::highpass_model(64));
  EXPECT_LT(fused.static_buffer_bytes, loops.static_buffer_bytes);
}

TEST(Codegen, HcgFallsBackToConventionalBelowVectorWidth) {
  auto gen = make_hcg_generator(isa::builtin("neon_sim"));
  GeneratedCode code = gen->generate(benchmodels::fir_model(3));  // < 4 lanes
  EXPECT_TRUE(code.simd_instructions.empty());
  EXPECT_NE(code.source.find("for (int i = 0; i < 3; ++i)"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Intensive actors
// ---------------------------------------------------------------------------

TEST(Codegen, BaselinesCallGeneralKernelHcgCallsSelected) {
  Model model = benchmodels::fft_model(1024);
  auto sc = make_simulink_generator();
  GeneratedCode sc_code = sc->generate(model);
  EXPECT_EQ(sc_code.intensive_choices.at("fft"), "fft_mixed");
  EXPECT_NE(sc_code.source.find("hcg_fft_mixed(in_x"), std::string::npos);

  synth::SelectionHistory history;
  auto hcg = make_hcg_generator(isa::builtin("neon_sim"), &history);
  GeneratedCode hcg_code = hcg->generate(model);
  const std::string& chosen = hcg_code.intensive_choices.at("fft");
  EXPECT_TRUE(chosen == "fft_radix2" || chosen == "fft_radix2_tab" ||
              chosen == "fft_radix4" || chosen == "fft_mixed")
      << chosen;
  // The selection was recorded in the shared history.
  EXPECT_TRUE(history.lookup("FFT", DataType::kComplex64, {Shape({1024})}));
}

TEST(Codegen, KernelSourceIsEmbeddedExactlyOnce) {
  // Two FFT actors share one embedded copy of hcg_fft.c.
  ModelBuilder b("twofft");
  PortRef x = b.inport("x", DataType::kComplex64, Shape({64}));
  PortRef f1 = b.actor("f1", "FFT", {x});
  PortRef f2 = b.actor("f2", "IFFT", {f1});
  b.outport("y", f2);
  auto gen = make_dfsynth_generator();
  GeneratedCode code = gen->generate(b.take());
  EXPECT_EQ(count_occurrences(code.source, "void hcg_fft_dft("), 1);
  // One definition plus two call sites.
  EXPECT_EQ(count_occurrences(code.source, "hcg_fft_mixed("), 3);
}

TEST(Codegen, ConvPassesBothOperandLengths) {
  auto gen = make_dfsynth_generator();
  GeneratedCode code = gen->generate(benchmodels::conv_model(100, 17));
  EXPECT_NE(code.source.find("hcg_conv_direct_f32(in_x, 100, sig_taps, 17,"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Expression folding & buffer reuse
// ---------------------------------------------------------------------------

TEST(Codegen, ScalarChainIsFoldedBySimulinkNotByDfsynth) {
  ModelBuilder b("fold");
  PortRef x = b.inport("x", DataType::kFloat32, Shape({}));
  PortRef g = b.actor("g", "Gain", {x}, {{"gain", "2"}});
  PortRef h = b.actor("h", "Bias", {g}, {{"bias", "1"}});
  b.outport("y", h);
  Model model = b.take();

  auto sc = make_simulink_generator();
  GeneratedCode folded = sc->generate(model);
  // No intermediate buffers: g and h are folded into the output statement.
  EXPECT_EQ(folded.source.find("sig_g"), std::string::npos);
  EXPECT_EQ(folded.source.find("sig_h"), std::string::npos);

  auto df = make_dfsynth_generator();
  GeneratedCode unfolded = df->generate(model);
  EXPECT_NE(unfolded.source.find("sig_g"), std::string::npos);
}

TEST(Codegen, FoldingStopsAtFanout) {
  ModelBuilder b("fanout");
  PortRef x = b.inport("x", DataType::kFloat32, Shape({}));
  PortRef g = b.actor("g", "Gain", {x}, {{"gain", "2"}});
  PortRef a = b.actor("a", "Bias", {g}, {{"bias", "1"}});
  PortRef c = b.actor("c", "Bias", {g}, {{"bias", "3"}});
  b.outport("ya", a);
  b.outport("yc", c);
  auto sc = make_simulink_generator();
  GeneratedCode code = sc->generate(b.take());
  // g has two consumers -> materialized once (into a reused buffer), not
  // folded into both consumers: the gain multiply appears exactly once.
  EXPECT_EQ(count_occurrences(code.source, "* (float)2"), 1);
}

TEST(Codegen, BufferReuseShrinksSimulinkStaticFootprint) {
  // A long chain of batch actors: with reuse, buffers ping-pong.
  Model model = benchmodels::batch_chain_model(6, 256);
  auto sc = make_simulink_generator();
  auto df = make_dfsynth_generator();
  GeneratedCode with_reuse = sc->generate(model);
  GeneratedCode without = df->generate(model);
  EXPECT_LT(with_reuse.static_buffer_bytes, without.static_buffer_bytes);
  EXPECT_NE(with_reuse.source.find("static float buf0[256];"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Delays
// ---------------------------------------------------------------------------

TEST(Codegen, DelayStateDeclaredInitializedAndUpdatedLast) {
  Model m("delayed");
  ActorId x = m.add_actor("x", "Inport");
  m.actor(x).set_param("dtype", "i32");
  m.actor(x).set_param("shape", "8");
  ActorId d = m.add_actor("d", "UnitDelay");
  m.actor(d).set_param("dtype", "i32");
  m.actor(d).set_param("shape", "8");
  ActorId a = m.add_actor("a", "BitNot");
  ActorId y = m.add_actor("y", "Outport");
  m.connect(x, 0, d, 0);
  m.connect(d, 0, a, 0);
  m.connect(a, 0, y, 0);

  auto gen = make_dfsynth_generator();
  GeneratedCode code = gen->generate(m);
  EXPECT_NE(code.source.find("static int32_t dly_d[8];"), std::string::npos);
  EXPECT_NE(code.source.find("memset(dly_d, 0, sizeof(dly_d));"),
            std::string::npos);
  // The state update is the last thing in step(), after the consumer read.
  const size_t use_pos = code.source.find("~dly_d[i]");
  const size_t update_pos = code.source.find("memcpy(dly_d, in_x");
  ASSERT_NE(use_pos, std::string::npos);
  ASSERT_NE(update_pos, std::string::npos);
  EXPECT_LT(use_pos, update_pos);
}

// ---------------------------------------------------------------------------
// Metadata
// ---------------------------------------------------------------------------

TEST(Codegen, MemoryFootprintsAreComparableAcrossTools) {
  for (Model& model : benchmodels::paper_models()) {
    auto sc = make_simulink_generator();
    auto df = make_dfsynth_generator();
    GeneratedCode a = sc->generate(model);
    GeneratedCode b = df->generate(model);
    // Buffer reuse and output aliasing can only shrink the footprint.
    EXPECT_LE(a.static_buffer_bytes, b.static_buffer_bytes) << model.name();
  }
  // A model whose only signal feeds the Outport directly needs no static
  // buffers at all.
  auto hcg = make_hcg_generator(isa::builtin("neon_sim"));
  GeneratedCode fig4 = hcg->generate(benchmodels::paper_fig4_model(1024));
  EXPECT_EQ(fig4.static_buffer_bytes, 0u);
  EXPECT_EQ(fig4.source.find("memcpy(out_"), std::string::npos);
}

TEST(Codegen, GeneratorNames) {
  EXPECT_EQ(make_hcg_generator(isa::builtin("neon"))->name(), "hcg");
  EXPECT_EQ(make_simulink_generator()->name(), "simulink");
  EXPECT_EQ(make_dfsynth_generator()->name(), "dfsynth");
}

}  // namespace
}  // namespace hcg::codegen
