// Unit tests for Algorithm 1 (intensive-actor implementation selection with
// pre-calculation and selection history).
#include <gtest/gtest.h>

#include "actors/resolve.hpp"
#include "benchmodels/benchmodels.hpp"
#include "support/fileio.hpp"
#include "synth/intensive.hpp"

namespace hcg::synth {
namespace {

const Actor& fft_actor(Model& model) { return model.actor_by_name("fft"); }

// ---------------------------------------------------------------------------
// SelectionHistory
// ---------------------------------------------------------------------------

TEST(History, StoreLookupRoundTrip) {
  SelectionHistory h;
  EXPECT_FALSE(h.lookup("FFT", DataType::kComplex64, {Shape({1024})}));
  h.store("FFT", DataType::kComplex64, {Shape({1024})}, "fft_radix2");
  auto hit = h.lookup("FFT", DataType::kComplex64, {Shape({1024})});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "fft_radix2");
  EXPECT_EQ(h.size(), 1u);
}

TEST(History, KeyDistinguishesTypeAndSize) {
  SelectionHistory h;
  h.store("FFT", DataType::kComplex64, {Shape({1024})}, "a");
  EXPECT_FALSE(h.lookup("FFT", DataType::kComplex64, {Shape({512})}));
  EXPECT_FALSE(h.lookup("IFFT", DataType::kComplex64, {Shape({1024})}));
  EXPECT_FALSE(h.lookup("FFT", DataType::kComplex128, {Shape({1024})}));
  h.store("Conv", DataType::kFloat32, {Shape({100}), Shape({17})}, "b");
  EXPECT_FALSE(h.lookup("Conv", DataType::kFloat32,
                        {Shape({100}), Shape({18})}));
  EXPECT_TRUE(h.lookup("Conv", DataType::kFloat32,
                       {Shape({100}), Shape({17})}));
}

TEST(History, StoreOverwrites) {
  SelectionHistory h;
  h.store("FFT", DataType::kComplex64, {Shape({64})}, "old");
  h.store("FFT", DataType::kComplex64, {Shape({64})}, "new");
  EXPECT_EQ(*h.lookup("FFT", DataType::kComplex64, {Shape({64})}), "new");
  EXPECT_EQ(h.size(), 1u);
}

TEST(History, SerializeDeserializeRoundTrip) {
  SelectionHistory h;
  h.store("FFT", DataType::kComplex64, {Shape({1024})}, "fft_radix2");
  h.store("MatMul", DataType::kFloat32, {Shape({3, 3}), Shape({3, 3})},
          "matmul_unrolled");
  SelectionHistory again = SelectionHistory::deserialize(h.serialize());
  EXPECT_EQ(again.size(), 2u);
  EXPECT_EQ(*again.lookup("MatMul", DataType::kFloat32,
                          {Shape({3, 3}), Shape({3, 3})}),
            "matmul_unrolled");
}

TEST(History, DeserializeSkipsCommentsRejectsGarbage) {
  SelectionHistory ok = SelectionHistory::deserialize(
      "# comment\n\nFFT c64 16 -> fft_radix2\n");
  EXPECT_EQ(ok.size(), 1u);
  EXPECT_THROW(SelectionHistory::deserialize("no arrow here\n"), ParseError);
}

TEST(History, SaveLoadFile) {
  TempDir dir;
  SelectionHistory h;
  h.store("DCT", DataType::kFloat32, {Shape({256})}, "dct_lee");
  const auto path = dir.path() / "history.txt";
  h.save(path);
  SelectionHistory loaded = SelectionHistory::load(path);
  EXPECT_EQ(*loaded.lookup("DCT", DataType::kFloat32, {Shape({256})}),
            "dct_lee");
}

// ---------------------------------------------------------------------------
// generate_test_inputs
// ---------------------------------------------------------------------------

TEST(TestInputs, MatchSpecsAndAreDeterministic) {
  Model model = resolved(benchmodels::conv_model(64, 8));
  const Actor& conv = model.actor_by_name("conv");
  auto a = generate_test_inputs(conv, 7);
  auto b = generate_test_inputs(conv, 7);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0].shape(), Shape({64}));
  EXPECT_EQ(a[1].shape(), Shape({8}));
  EXPECT_TRUE(a[0].bytes_equal(b[0]));
  auto c = generate_test_inputs(conv, 8);
  EXPECT_FALSE(a[0].bytes_equal(c[0]));
}

TEST(TestInputs, MatInvInputsAreInvertible) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kFloat32, Shape({4, 4}));
  b.outport("y", b.actor("inv", "MatInv", {x}));
  Model model = resolved(b.take());
  auto inputs = generate_test_inputs(model.actor_by_name("inv"), 3);
  // Diagonal dominance: |a_ii| > sum of |a_ij|: bump is n+1 with entries in
  // [-1, 1), so each diagonal exceeds 4 while off-diagonals stay below 1.
  const float* m = inputs[0].as<float>();
  for (int i = 0; i < 4; ++i) {
    EXPECT_GT(std::abs(m[i * 4 + i]), 3.0f);
  }
}

// ---------------------------------------------------------------------------
// Algorithm 1 selection
// ---------------------------------------------------------------------------

TEST(Select, Pow2FftPrefersFastImplementationOverGeneral) {
  Model model = resolved(benchmodels::fft_model(1024));
  SelectionHistory history;
  IntensiveOptions options;
  options.use_history = false;
  auto selection = select_implementation(fft_actor(model), history, options);
  ASSERT_NE(selection.impl, nullptr);
  EXPECT_FALSE(selection.from_history);
  // Radix-2/radix-4 must beat the naive DFT and Bluestein at 1024; we do not
  // pin the exact winner (radix2 vs radix4 vs mixed are close), but the
  // O(n^2) DFT must never win at this size.
  EXPECT_NE(selection.impl->id, "fft_dft");
  EXPECT_NE(selection.impl->id, "fft_bluestein");
  // Every eligible candidate was measured.
  EXPECT_EQ(selection.measured_costs.size(), 6u);
  EXPECT_GT(selection.measured_costs.at("fft_dft"),
            selection.measured_costs.at(selection.impl->id));
}

TEST(Select, NonPow2SizeFiltersPow2Candidates) {
  Model model = resolved(benchmodels::fft_model(600));  // 600 = 2^3*3*5^2
  SelectionHistory history;
  IntensiveOptions options;
  options.use_history = false;
  auto selection = select_implementation(fft_actor(model), history, options);
  // radix2/radix4 cannot handle 600 (canHandleDataSize filter).
  EXPECT_EQ(selection.measured_costs.count("fft_radix2"), 0u);
  EXPECT_EQ(selection.measured_costs.count("fft_radix4"), 0u);
  EXPECT_GE(selection.measured_costs.size(), 2u);  // dft, mixed, bluestein
  EXPECT_NE(selection.impl->id, "fft_radix2");
}

TEST(Select, HistoryHitSkipsPreCalculation) {
  Model model = resolved(benchmodels::fft_model(256));
  SelectionHistory history;
  history.store("FFT", DataType::kComplex64, {Shape({256})}, "fft_bluestein");
  auto selection = select_implementation(fft_actor(model), history, {});
  EXPECT_TRUE(selection.from_history);
  EXPECT_EQ(selection.impl->id, "fft_bluestein");  // honored verbatim
  EXPECT_TRUE(selection.measured_costs.empty());
}

TEST(Select, StaleHistoryEntryTriggersFreshPreCalculation) {
  Model model = resolved(benchmodels::fft_model(256));
  SelectionHistory history;
  history.store("FFT", DataType::kComplex64, {Shape({256})}, "no_such_impl");
  auto selection = select_implementation(fft_actor(model), history, {});
  EXPECT_FALSE(selection.from_history);
  EXPECT_FALSE(selection.measured_costs.empty());
  // The stale entry was overwritten with the fresh choice.
  EXPECT_EQ(*history.lookup("FFT", DataType::kComplex64, {Shape({256})}),
            selection.impl->id);
}

TEST(Select, SelectionIsStoredForReuse) {
  Model model = resolved(benchmodels::dct_model(128));
  SelectionHistory history;
  auto first = select_implementation(model.actor_by_name("dct"), history, {});
  EXPECT_FALSE(first.from_history);
  auto second = select_implementation(model.actor_by_name("dct"), history, {});
  EXPECT_TRUE(second.from_history);
  EXPECT_EQ(first.impl->id, second.impl->id);
}

TEST(Select, UseHistoryFalseNeverStores) {
  Model model = resolved(benchmodels::dct_model(64));
  SelectionHistory history;
  IntensiveOptions options;
  options.use_history = false;
  select_implementation(model.actor_by_name("dct"), history, options);
  EXPECT_EQ(history.size(), 0u);
}

TEST(Select, SmallMatrixPrefersSpecializedKernels) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kFloat32, Shape({3, 3}));
  PortRef y = b.inport("y", DataType::kFloat32, Shape({3, 3}));
  b.outport("o", b.actor("mm", "MatMul", {x, y}));
  Model model = resolved(b.take());
  SelectionHistory history;
  IntensiveOptions options;
  options.use_history = false;
  options.repetitions = 5;
  auto selection =
      select_implementation(model.actor_by_name("mm"), history, options);
  // Both candidates measured; the unrolled kernel is eligible at n=3.
  EXPECT_EQ(selection.measured_costs.size(), 2u);
  EXPECT_TRUE(selection.measured_costs.count("matmul_unrolled"));
}

TEST(Select, LargeMatrixOnlyGenericEligible) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kFloat32, Shape({8, 8}));
  PortRef y = b.inport("y", DataType::kFloat32, Shape({8, 8}));
  b.outport("o", b.actor("mm", "MatMul", {x, y}));
  Model model = resolved(b.take());
  SelectionHistory history;
  auto selection = select_implementation(model.actor_by_name("mm"), history, {});
  EXPECT_EQ(selection.impl->id, "matmul_generic");
  EXPECT_EQ(selection.measured_costs.size(), 1u);
}

TEST(Select, ConvLongKernelLandsOnFasterThanDirectChoice) {
  // With a 256-tap kernel over 1024 samples the FFT convolution should win
  // comfortably; at minimum, the chosen impl must not be slower than direct.
  Model model = resolved(benchmodels::conv_model(1024, 256));
  SelectionHistory history;
  IntensiveOptions options;
  options.use_history = false;
  auto selection =
      select_implementation(model.actor_by_name("conv"), history, options);
  const double chosen = selection.measured_costs.at(selection.impl->id);
  const double direct = selection.measured_costs.at("conv_direct");
  EXPECT_LE(chosen, direct);
}

TEST(Select, IdentifiesInverseTransformsSeparately) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kComplex64, Shape({128}));
  b.outport("y", b.actor("ifft", "IFFT", {x}));
  Model model = resolved(b.take());
  SelectionHistory history;
  auto selection =
      select_implementation(model.actor_by_name("ifft"), history, {});
  EXPECT_EQ(selection.impl->actor_type, "IFFT");
  EXPECT_TRUE(history.lookup("IFFT", DataType::kComplex64, {Shape({128})}));
}

}  // namespace
}  // namespace hcg::synth
