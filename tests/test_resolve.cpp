// Unit tests for model resolution (type/shape inference) and actor
// classification (paper §3.1 Actor Dispatch).
#include <gtest/gtest.h>

#include "actors/catalog.hpp"
#include "actors/resolve.hpp"
#include "model/builder.hpp"
#include "support/error.hpp"

namespace hcg {
namespace {

Model simple_elementwise(const std::string& type, DataType dtype, int n,
                         std::initializer_list<
                             std::pair<std::string_view, std::string_view>>
                             params = {}) {
  ModelBuilder b("m");
  const ActorTypeInfo& info = actor_type_info(type);
  std::vector<PortRef> ins;
  for (int i = 0; i < info.input_count; ++i) {
    ins.push_back(b.inport("x" + std::to_string(i), dtype, Shape({n})));
  }
  PortRef out = b.actor("op", type, ins, params);
  b.outport("y", out);
  return b.take();
}

// ---------------------------------------------------------------------------
// catalog
// ---------------------------------------------------------------------------

TEST(Catalog, KnowsEveryTable1Actor) {
  for (const char* type :
       {"Add", "Sub", "Mul", "Div", "Shr", "Shl", "BitNot", "BitAnd", "BitOr",
        "BitXor", "Min", "Max", "Abs", "Abd", "Recp", "Sqrt", "FFT", "IFFT",
        "DCT", "IDCT", "Conv", "Conv2D", "MatMul", "MatInv", "MatDet"}) {
    EXPECT_TRUE(is_known_actor_type(type)) << type;
  }
  EXPECT_FALSE(is_known_actor_type("Quux"));
  EXPECT_THROW(actor_type_info("Quux"), ModelError);
}

TEST(Catalog, AritiesMatchSemantics) {
  EXPECT_EQ(actor_type_info("Add").input_count, 2);
  EXPECT_EQ(actor_type_info("Abs").input_count, 1);
  EXPECT_EQ(actor_type_info("Conv").input_count, 2);
  EXPECT_EQ(actor_type_info("Inport").input_count, 0);
  EXPECT_EQ(actor_type_info("Outport").output_count, 0);
  EXPECT_TRUE(actor_type_info("UnitDelay").stateful);
  EXPECT_TRUE(actor_type_info("FFT").intensive);
  EXPECT_TRUE(actor_type_info("Mul").elementwise);
}

// ---------------------------------------------------------------------------
// element-wise inference
// ---------------------------------------------------------------------------

TEST(Resolve, ElementwiseBinaryPropagatesSpec) {
  Model m = resolved(simple_elementwise("Add", DataType::kInt32, 16));
  const Actor& op = m.actor_by_name("op");
  EXPECT_EQ(op.output(0).type, DataType::kInt32);
  EXPECT_EQ(op.output(0).shape, Shape({16}));
  EXPECT_EQ(op.input(1).shape, Shape({16}));
}

TEST(Resolve, MismatchedOperandsRejected) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kInt32, Shape({8}));
  PortRef y = b.inport("y", DataType::kInt32, Shape({16}));
  b.actor("op", "Add", {x, y});
  Model m = b.take();
  EXPECT_THROW(resolve_model(m), ModelError);
}

TEST(Resolve, MixedTypesRejected) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kInt32, Shape({8}));
  PortRef y = b.inport("y", DataType::kFloat32, Shape({8}));
  b.actor("op", "Mul", {x, y});
  Model m = b.take();
  EXPECT_THROW(resolve_model(m), ModelError);
}

TEST(Resolve, TypeRestrictionsPerOp) {
  // Div on integers is rejected (no SIMD integer division either).
  EXPECT_THROW(resolved(simple_elementwise("Div", DataType::kInt32, 8)),
               ModelError);
  EXPECT_NO_THROW(resolved(simple_elementwise("Div", DataType::kFloat32, 8)));
  // Bit ops need integers.
  EXPECT_THROW(resolved(simple_elementwise("BitAnd", DataType::kFloat32, 8)),
               ModelError);
  EXPECT_NO_THROW(resolved(simple_elementwise("BitAnd", DataType::kUInt16, 8)));
  // Sqrt/Recp need floats.
  EXPECT_THROW(resolved(simple_elementwise("Sqrt", DataType::kInt32, 8)),
               ModelError);
  EXPECT_THROW(resolved(simple_elementwise("Recp", DataType::kInt8, 8)),
               ModelError);
  // Abs needs signedness.
  EXPECT_THROW(resolved(simple_elementwise("Abs", DataType::kUInt8, 8)),
               ModelError);
  EXPECT_NO_THROW(resolved(simple_elementwise("Abs", DataType::kInt8, 8)));
}

TEST(Resolve, ShiftAmountValidation) {
  EXPECT_NO_THROW(resolved(simple_elementwise("Shr", DataType::kInt32, 8,
                                              {{"amount", "31"}})));
  EXPECT_THROW(resolved(simple_elementwise("Shr", DataType::kInt32, 8,
                                           {{"amount", "32"}})),
               ModelError);
  EXPECT_THROW(resolved(simple_elementwise("Shl", DataType::kInt16, 8,
                                           {{"amount", "-1"}})),
               ModelError);
  EXPECT_THROW(resolved(simple_elementwise("Shr", DataType::kInt32, 8)),
               ModelError);  // missing amount
}

TEST(Resolve, GainBiasNeedTheirParams) {
  EXPECT_THROW(resolved(simple_elementwise("Gain", DataType::kFloat32, 8)),
               ModelError);
  EXPECT_NO_THROW(resolved(
      simple_elementwise("Gain", DataType::kFloat32, 8, {{"gain", "2"}})));
  EXPECT_THROW(resolved(simple_elementwise("Bias", DataType::kFloat32, 8)),
               ModelError);
}

TEST(Resolve, CastChangesTypeKeepsShape) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kFloat32, Shape({8}));
  PortRef c = b.actor("c", "Cast", {x}, {{"to", "i32"}});
  b.outport("y", c);
  Model m = resolved(b.take());
  EXPECT_EQ(m.actor_by_name("c").output(0).type, DataType::kInt32);
  EXPECT_EQ(m.actor_by_name("c").output(0).shape, Shape({8}));
}

TEST(Resolve, CastComplexRejected) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kComplex64, Shape({8}));
  b.actor("c", "Cast", {x}, {{"to", "i32"}});
  Model m = b.take();
  EXPECT_THROW(resolve_model(m), ModelError);
}

// ---------------------------------------------------------------------------
// intensive inference
// ---------------------------------------------------------------------------

TEST(Resolve, FftRequiresComplexVector) {
  ModelBuilder good("m");
  PortRef x = good.inport("x", DataType::kComplex64, Shape({64}));
  good.outport("y", good.actor("f", "FFT", {x}));
  EXPECT_NO_THROW(resolved(good.take()));

  ModelBuilder bad("m");
  PortRef z = bad.inport("x", DataType::kFloat32, Shape({64}));
  bad.actor("f", "FFT", {z});
  Model model = bad.take();
  EXPECT_THROW(resolve_model(model), ModelError);
}

TEST(Resolve, Fft2dRequiresMatrix) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kComplex64, Shape({4, 8}));
  b.outport("y", b.actor("f", "FFT2D", {x}));
  Model m = resolved(b.take());
  EXPECT_EQ(m.actor_by_name("f").output(0).shape, Shape({4, 8}));

  ModelBuilder bad("m");
  PortRef z = bad.inport("x", DataType::kComplex64, Shape({8}));
  bad.actor("f", "FFT2D", {z});
  Model model = bad.take();
  EXPECT_THROW(resolve_model(model), ModelError);
}

TEST(Resolve, ConvOutputIsFullLength) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kFloat32, Shape({100}));
  PortRef h = b.inport("h", DataType::kFloat32, Shape({17}));
  b.outport("y", b.actor("c", "Conv", {x, h}));
  Model m = resolved(b.take());
  EXPECT_EQ(m.actor_by_name("c").output(0).shape, Shape({116}));
}

TEST(Resolve, Conv2dOutputIsFullSize) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kFloat64, Shape({8, 10}));
  PortRef h = b.inport("h", DataType::kFloat64, Shape({3, 3}));
  b.outport("y", b.actor("c", "Conv2D", {x, h}));
  Model m = resolved(b.take());
  EXPECT_EQ(m.actor_by_name("c").output(0).shape, Shape({10, 12}));
}

TEST(Resolve, MatActorsRequireSquareFloatMatrices) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kFloat32, Shape({3, 3}));
  b.outport("y", b.actor("inv", "MatInv", {x}));
  EXPECT_NO_THROW(resolved(b.take()));

  ModelBuilder bad("m");
  PortRef z = bad.inport("x", DataType::kFloat32, Shape({3, 4}));
  bad.actor("inv", "MatInv", {z});
  Model model = bad.take();
  EXPECT_THROW(resolve_model(model), ModelError);

  ModelBuilder baddt("m");
  PortRef w = baddt.inport("x", DataType::kInt32, Shape({3, 3}));
  baddt.actor("inv", "MatInv", {w});
  Model model2 = baddt.take();
  EXPECT_THROW(resolve_model(model2), ModelError);
}

TEST(Resolve, MatDetProducesScalar) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kFloat64, Shape({4, 4}));
  b.outport("y", b.actor("det", "MatDet", {x}));
  Model m = resolved(b.take());
  EXPECT_TRUE(m.actor_by_name("det").output(0).shape.is_scalar());
  EXPECT_EQ(m.actor_by_name("det").output(0).type, DataType::kFloat64);
}

// ---------------------------------------------------------------------------
// structural validation
// ---------------------------------------------------------------------------

TEST(Resolve, UnconnectedInputRejected) {
  Model m("t");
  m.add_actor("a", "Abs");
  EXPECT_THROW(resolve_model(m), ModelError);
}

TEST(Resolve, UnitDelayRequiresDeclaredSpecMatchingFeed) {
  Model m("t");
  ActorId x = m.add_actor("x", "Inport");
  m.actor(x).set_param("dtype", "i32");
  m.actor(x).set_param("shape", "8");
  ActorId d = m.add_actor("d", "UnitDelay");
  m.actor(d).set_param("dtype", "i32");
  m.actor(d).set_param("shape", "8");
  m.connect(x, 0, d, 0);
  EXPECT_NO_THROW(resolve_model(m));

  Model bad("t");
  ActorId x2 = bad.add_actor("x", "Inport");
  bad.actor(x2).set_param("dtype", "i32");
  bad.actor(x2).set_param("shape", "8");
  ActorId d2 = bad.add_actor("d", "UnitDelay");
  bad.actor(d2).set_param("dtype", "i32");
  bad.actor(d2).set_param("shape", "4");  // disagrees with feed
  bad.connect(x2, 0, d2, 0);
  EXPECT_THROW(resolve_model(bad), ModelError);
}

TEST(Resolve, InportRequiresDtypeAndShape) {
  Model m("t");
  m.add_actor("x", "Inport");
  EXPECT_THROW(resolve_model(m), ModelError);
}

TEST(Resolve, IsIdempotent) {
  Model m = simple_elementwise("Add", DataType::kFloat32, 8);
  resolve_model(m);
  EXPECT_NO_THROW(resolve_model(m));
  EXPECT_EQ(m.actor_by_name("op").output(0).shape, Shape({8}));
}

// ---------------------------------------------------------------------------
// classification (Actor Dispatch)
// ---------------------------------------------------------------------------

TEST(Classify, ArrayElementwiseIsBatch) {
  Model m = resolved(simple_elementwise("Mul", DataType::kInt32, 1024));
  EXPECT_EQ(classify(m, m.find_actor("op")), ActorKind::kBatch);
}

TEST(Classify, ScalarElementwiseIsBasic) {
  Model m = resolved(simple_elementwise("Mul", DataType::kInt32, 1));
  EXPECT_EQ(classify(m, m.find_actor("op")), ActorKind::kBasic);
}

TEST(Classify, IntensiveSourceSinkKinds) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kComplex64, Shape({64}));
  PortRef f = b.actor("f", "FFT", {x});
  b.outport("y", f);
  Model m = resolved(b.take());
  EXPECT_EQ(classify(m, m.find_actor("f")), ActorKind::kIntensive);
  EXPECT_EQ(classify(m, m.find_actor("x")), ActorKind::kSource);
  EXPECT_EQ(classify(m, m.find_actor("y")), ActorKind::kSink);
}

TEST(Classify, DelayIsBasicAndConstantIsSource) {
  Model m("t");
  ActorId x = m.add_actor("x", "Constant");
  m.actor(x).set_param("dtype", "i32");
  m.actor(x).set_param("shape", "8");
  m.actor(x).set_param("value", "1");
  ActorId d = m.add_actor("d", "UnitDelay");
  m.actor(d).set_param("dtype", "i32");
  m.actor(d).set_param("shape", "8");
  m.connect(x, 0, d, 0);
  resolve_model(m);
  EXPECT_EQ(classify(m, x), ActorKind::kSource);
  EXPECT_EQ(classify(m, d), ActorKind::kBasic);
}

TEST(Classify, GainOnArrayIsBatch) {
  Model m = resolved(
      simple_elementwise("Gain", DataType::kFloat32, 128, {{"gain", "2"}}));
  EXPECT_EQ(classify(m, m.find_actor("op")), ActorKind::kBatch);
}

}  // namespace
}  // namespace hcg
