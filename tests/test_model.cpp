// Unit tests for the model IR: data types, shapes, tensors, Model/Actor,
// the builder and the XML loader.
#include <gtest/gtest.h>

#include "model/builder.hpp"
#include "model/datatype.hpp"
#include "model/loader.hpp"
#include "model/model.hpp"
#include "model/tensor.hpp"
#include "support/error.hpp"

namespace hcg {
namespace {

// ---------------------------------------------------------------------------
// DataType
// ---------------------------------------------------------------------------

TEST(DataType, BitWidths) {
  EXPECT_EQ(bit_width(DataType::kInt8), 8);
  EXPECT_EQ(bit_width(DataType::kUInt16), 16);
  EXPECT_EQ(bit_width(DataType::kInt32), 32);
  EXPECT_EQ(bit_width(DataType::kFloat32), 32);
  EXPECT_EQ(bit_width(DataType::kFloat64), 64);
  EXPECT_EQ(bit_width(DataType::kComplex64), 64);
  EXPECT_EQ(byte_width(DataType::kComplex128), 16);
}

TEST(DataType, Predicates) {
  EXPECT_TRUE(is_float(DataType::kFloat32));
  EXPECT_FALSE(is_float(DataType::kInt32));
  EXPECT_TRUE(is_signed_int(DataType::kInt8));
  EXPECT_FALSE(is_signed_int(DataType::kUInt8));
  EXPECT_TRUE(is_unsigned_int(DataType::kUInt64));
  EXPECT_TRUE(is_integer(DataType::kInt16));
  EXPECT_FALSE(is_integer(DataType::kFloat64));
  EXPECT_TRUE(is_complex(DataType::kComplex64));
  EXPECT_FALSE(is_complex(DataType::kFloat32));
}

TEST(DataType, NamesRoundTrip) {
  for (DataType t : {DataType::kInt8, DataType::kInt16, DataType::kInt32,
                     DataType::kInt64, DataType::kUInt8, DataType::kUInt16,
                     DataType::kUInt32, DataType::kUInt64, DataType::kFloat32,
                     DataType::kFloat64, DataType::kComplex64,
                     DataType::kComplex128}) {
    EXPECT_EQ(parse_datatype(short_name(t)), t);
  }
}

TEST(DataType, ParseRejectsUnknown) {
  EXPECT_THROW(parse_datatype("i128"), ParseError);
  EXPECT_THROW(parse_datatype(""), ParseError);
}

TEST(DataType, CNames) {
  EXPECT_EQ(c_name(DataType::kInt32), "int32_t");
  EXPECT_EQ(c_name(DataType::kFloat32), "float");
  EXPECT_EQ(c_name(DataType::kComplex64), "float");  // interleaved pairs
}

TEST(DataType, ComponentType) {
  EXPECT_EQ(component_type(DataType::kComplex64), DataType::kFloat32);
  EXPECT_EQ(component_type(DataType::kComplex128), DataType::kFloat64);
  EXPECT_EQ(component_type(DataType::kInt32), DataType::kInt32);
}

// ---------------------------------------------------------------------------
// Shape
// ---------------------------------------------------------------------------

TEST(Shape, ElementsAndRank) {
  EXPECT_EQ(Shape{}.elements(), 1);
  EXPECT_TRUE(Shape{}.is_scalar());
  EXPECT_EQ(Shape({8}).elements(), 8);
  EXPECT_EQ(Shape({3, 4}).elements(), 12);
  EXPECT_EQ(Shape({3, 4}).rank(), 2);
}

TEST(Shape, ToStringAndParseRoundTrip) {
  EXPECT_EQ(Shape{}.to_string(), "scalar");
  EXPECT_EQ(Shape({1024}).to_string(), "1024");
  EXPECT_EQ(Shape({4, 4}).to_string(), "4x4");
  EXPECT_EQ(Shape::parse("scalar"), Shape{});
  EXPECT_EQ(Shape::parse(""), Shape{});
  EXPECT_EQ(Shape::parse("16"), Shape({16}));
  EXPECT_EQ(Shape::parse(" 3x5 "), Shape({3, 5}));
}

TEST(Shape, ParseRejectsBadDimensions) {
  EXPECT_THROW(Shape::parse("0"), ParseError);
  EXPECT_THROW(Shape::parse("-4"), ParseError);
  EXPECT_THROW(Shape::parse("4xx4"), ParseError);
  EXPECT_THROW(Shape::parse("abc"), ParseError);
}

// ---------------------------------------------------------------------------
// Tensor
// ---------------------------------------------------------------------------

TEST(Tensor, AllocatesZeroedStorage) {
  Tensor t(DataType::kInt32, Shape({5}));
  EXPECT_EQ(t.byte_size(), 20u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(t.get_int(i), 0);
}

TEST(Tensor, ComplexStoresInterleavedPairs) {
  Tensor t(DataType::kComplex64, Shape({3}));
  EXPECT_EQ(t.byte_size(), 24u);  // 3 * 2 floats
  t.as<float>()[4] = 2.5f;        // element 2, real part
  EXPECT_FLOAT_EQ(t.as<float>()[4], 2.5f);
}

TEST(Tensor, GetSetDoubleAcrossTypes) {
  for (DataType type : {DataType::kInt8, DataType::kInt16, DataType::kUInt32,
                        DataType::kFloat32, DataType::kFloat64}) {
    Tensor t(type, Shape({4}));
    t.set_double(2, 7.0);
    EXPECT_DOUBLE_EQ(t.get_double(2), 7.0) << short_name(type);
  }
}

TEST(Tensor, GetDoubleOutOfRangeThrows) {
  Tensor t(DataType::kInt32, Shape({2}));
  EXPECT_THROW(t.get_double(2), InternalError);
  EXPECT_THROW(t.set_double(-1, 0.0), InternalError);
}

TEST(Tensor, BytesEqual) {
  Tensor a(DataType::kInt32, Shape({3}));
  Tensor b(DataType::kInt32, Shape({3}));
  EXPECT_TRUE(a.bytes_equal(b));
  b.set_int(1, 9);
  EXPECT_FALSE(a.bytes_equal(b));
  Tensor c(DataType::kInt16, Shape({3}));
  EXPECT_FALSE(a.bytes_equal(c));
}

TEST(Tensor, MaxAbsDifference) {
  Tensor a(DataType::kFloat32, Shape({3}));
  Tensor b(DataType::kFloat32, Shape({3}));
  a.as<float>()[1] = 1.0f;
  b.as<float>()[1] = 1.5f;
  EXPECT_FLOAT_EQ(static_cast<float>(a.max_abs_difference(b)), 0.5f);
}

TEST(Tensor, MaxAbsDifferenceComplexCoversBothComponents) {
  Tensor a(DataType::kComplex64, Shape({2}));
  Tensor b(DataType::kComplex64, Shape({2}));
  b.as<float>()[3] = -2.0f;  // imag of element 1
  EXPECT_FLOAT_EQ(static_cast<float>(a.max_abs_difference(b)), 2.0f);
}

TEST(Tensor, MaxAbsDifferenceShapeMismatchThrows) {
  Tensor a(DataType::kFloat32, Shape({3}));
  Tensor b(DataType::kFloat32, Shape({4}));
  EXPECT_THROW(a.max_abs_difference(b), InternalError);
}

// ---------------------------------------------------------------------------
// Model structure
// ---------------------------------------------------------------------------

TEST(Model, AddActorAssignsSequentialIds) {
  Model m("t");
  EXPECT_EQ(m.add_actor("a", "Add"), 0);
  EXPECT_EQ(m.add_actor("b", "Sub"), 1);
  EXPECT_EQ(m.actor_count(), 2);
  EXPECT_EQ(m.actor(0).name(), "a");
  EXPECT_EQ(m.actor(1).type(), "Sub");
}

TEST(Model, RejectsDuplicateAndInvalidNames) {
  Model m("t");
  m.add_actor("a", "Add");
  EXPECT_THROW(m.add_actor("a", "Sub"), ModelError);
  EXPECT_THROW(m.add_actor("bad name", "Add"), ModelError);
  EXPECT_THROW(m.add_actor("9x", "Add"), ModelError);
}

TEST(Model, ConnectRejectsDoubleDrivenInput) {
  Model m("t");
  ActorId a = m.add_actor("a", "Inport");
  ActorId b = m.add_actor("b", "Inport");
  ActorId c = m.add_actor("c", "Add");
  m.connect(a, 0, c, 0);
  m.connect(b, 0, c, 1);
  EXPECT_THROW(m.connect(b, 0, c, 0), ModelError);
}

TEST(Model, ConnectValidatesIds) {
  Model m("t");
  ActorId a = m.add_actor("a", "Inport");
  EXPECT_THROW(m.connect(a, 0, 99, 0), ModelError);
  EXPECT_THROW(m.connect(-1, 0, a, 0), ModelError);
  EXPECT_THROW(m.connect(a, -1, a, 0), ModelError);
}

TEST(Model, IncomingAndOutgoingQueries) {
  Model m("t");
  ActorId a = m.add_actor("a", "Inport");
  ActorId b = m.add_actor("b", "Abs");
  ActorId c = m.add_actor("c", "Outport");
  m.connect(a, 0, b, 0);
  m.connect(b, 0, c, 0);
  ASSERT_TRUE(m.incoming(b, 0).has_value());
  EXPECT_EQ(m.incoming(b, 0)->src, a);
  EXPECT_FALSE(m.incoming(a, 0).has_value());
  EXPECT_EQ(m.outgoing(a, 0).size(), 1u);
  EXPECT_EQ(m.outgoing_all(b).size(), 1u);
}

TEST(Model, FindActorAndPortsByType) {
  Model m("t");
  m.add_actor("x", "Inport");
  m.add_actor("f", "FFT");
  m.add_actor("y", "Outport");
  EXPECT_EQ(m.find_actor("f"), 1);
  EXPECT_EQ(m.find_actor("nope"), kNoActor);
  EXPECT_EQ(m.actor_by_name("y").id(), 2);
  EXPECT_THROW(m.actor_by_name("nope"), ModelError);
  EXPECT_EQ(m.inports(), std::vector<ActorId>{0});
  EXPECT_EQ(m.outports(), std::vector<ActorId>{2});
  EXPECT_EQ(m.actors_of_type("FFT"), std::vector<ActorId>{1});
}

TEST(Model, ActorParams) {
  Model m("t");
  Actor& a = m.actor(m.add_actor("g", "Gain"));
  a.set_param("gain", "2.5");
  EXPECT_TRUE(a.has_param("gain"));
  EXPECT_EQ(a.param("gain"), "2.5");
  EXPECT_EQ(a.param_or("missing", "x"), "x");
  EXPECT_DOUBLE_EQ(a.double_param_or("gain", 0), 2.5);
  EXPECT_EQ(a.int_param_or("amount", 7), 7);
  EXPECT_THROW(a.param("missing"), ModelError);
  EXPECT_THROW(a.int_param("missing"), ModelError);
}

TEST(Model, PortAccessBeforeResolveThrows) {
  Model m("t");
  ActorId a = m.add_actor("a", "Add");
  EXPECT_FALSE(m.actor(a).is_resolved());
  EXPECT_THROW(m.actor(a).input(0), ModelError);
  EXPECT_THROW(m.actor(a).output(0), ModelError);
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

TEST(Builder, WiresActorsInPortOrder) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kInt32, Shape({4}));
  PortRef y = b.inport("y", DataType::kInt32, Shape({4}));
  PortRef s = b.actor("s", "Sub", {x, y});
  b.outport("o", s);
  Model m = b.take();
  EXPECT_EQ(m.actor_count(), 4);
  EXPECT_EQ(m.incoming(m.find_actor("s"), 0)->src, m.find_actor("x"));
  EXPECT_EQ(m.incoming(m.find_actor("s"), 1)->src, m.find_actor("y"));
}

TEST(Builder, SetsSourceParams) {
  ModelBuilder b("m");
  b.inport("x", DataType::kFloat32, Shape({8}));
  b.constant("c", DataType::kInt16, Shape({2, 2}), "1,2,3,4");
  Model m = b.take();
  EXPECT_EQ(m.actor_by_name("x").param("dtype"), "f32");
  EXPECT_EQ(m.actor_by_name("x").param("shape"), "8");
  EXPECT_EQ(m.actor_by_name("c").param("shape"), "2x2");
  EXPECT_EQ(m.actor_by_name("c").param("value"), "1,2,3,4");
}

TEST(Builder, ActorParamsPassThrough) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kInt32, Shape({4}));
  b.actor("sh", "Shr", {x}, {{"amount", "2"}});
  Model m = b.take();
  EXPECT_EQ(m.actor_by_name("sh").int_param("amount"), 2);
}

// ---------------------------------------------------------------------------
// Loader
// ---------------------------------------------------------------------------

constexpr const char* kFirXml = R"(
<model name="fir">
  <actor name="x"    type="Inport"   dtype="i32" shape="16"/>
  <actor name="taps" type="Constant" dtype="i32" shape="16" value="7"/>
  <actor name="m"    type="Mul"/>
  <actor name="y"    type="Outport"/>
  <connect from="x"      to="m:0"/>
  <connect from="taps"   to="m:1"/>
  <connect from="m"      to="y"/>
</model>
)";

TEST(Loader, ParsesActorsParamsConnections) {
  Model m = load_model(kFirXml);
  EXPECT_EQ(m.name(), "fir");
  EXPECT_EQ(m.actor_count(), 4);
  EXPECT_EQ(m.actor_by_name("x").param("dtype"), "i32");
  EXPECT_EQ(m.actor_by_name("taps").param("value"), "7");
  EXPECT_EQ(m.incoming(m.find_actor("m"), 1)->src, m.find_actor("taps"));
  EXPECT_EQ(m.incoming(m.find_actor("y"), 0)->src, m.find_actor("m"));
}

TEST(Loader, AcceptsParamChildren) {
  Model m = load_model(
      "<model name=\"t\"><actor name=\"g\" type=\"Gain\">"
      "<param name=\"gain\" value=\"0.5\"/></actor></model>");
  EXPECT_EQ(m.actor_by_name("g").param("gain"), "0.5");
}

TEST(Loader, RejectsUnknownEndpoint) {
  EXPECT_THROW(load_model("<model name=\"t\"><actor name=\"a\" type=\"Abs\"/>"
                          "<connect from=\"ghost\" to=\"a\"/></model>"),
               ModelError);
}

TEST(Loader, RejectsWrongRootElement) {
  EXPECT_THROW(load_model("<thing name=\"t\"/>"), ParseError);
}

TEST(Loader, RoundTripsThroughWriter) {
  Model m = load_model(kFirXml);
  Model again = load_model(model_to_xml(m));
  EXPECT_EQ(again.actor_count(), m.actor_count());
  EXPECT_EQ(again.connections().size(), m.connections().size());
  EXPECT_EQ(again.actor_by_name("taps").param("value"), "7");
  EXPECT_EQ(again.incoming(again.find_actor("m"), 1)->src,
            again.find_actor("taps"));
}

}  // namespace
}  // namespace hcg
