// Tests for the observability subsystem: span tracing, metrics, JSON
// writer/parser, and the structured codegen report.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <thread>

#include "actors/resolve.hpp"
#include "benchmodels/benchmodels.hpp"
#include "codegen/generator.hpp"
#include "isa/builtin.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/logging.hpp"
#include "synth/history.hpp"

namespace hcg {
namespace {

// ---------------------------------------------------------------------------
// JSON writer

TEST(ObsJson, WriterProducesValidNestedDocument) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("name").value("hcg \"quoted\" \n");
  w.key("count").value(std::uint64_t{42});
  w.key("offset").value(std::int64_t{-7});
  w.key("ratio").value(0.5);
  w.key("flag").value(true);
  w.key("missing").null();
  w.key("list").begin_array();
  w.value(1).value(2).value(3);
  w.end_array();
  w.key("nested").begin_object().key("x").value("y").end_object();
  w.end_object();

  const std::string text = w.str();
  ASSERT_TRUE(obs::json_valid(text)) << text;

  obs::JsonValue doc = obs::json_parse(text);
  EXPECT_EQ(doc.at("name").string, "hcg \"quoted\" \n");
  EXPECT_EQ(doc.at("count").number, 42.0);
  EXPECT_EQ(doc.at("offset").number, -7.0);
  EXPECT_EQ(doc.at("ratio").number, 0.5);
  EXPECT_TRUE(doc.at("flag").boolean);
  EXPECT_TRUE(doc.at("missing").is_null());
  ASSERT_EQ(doc.at("list").array.size(), 3u);
  EXPECT_EQ(doc.at("list").array[2].number, 3.0);
  EXPECT_EQ(doc.at("nested").at("x").string, "y");
}

TEST(ObsJson, NonFiniteDoublesSerializeAsNull) {
  obs::JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  obs::JsonValue doc = obs::json_parse(w.str());
  EXPECT_TRUE(doc.array[0].is_null());
  EXPECT_TRUE(doc.array[1].is_null());
}

TEST(ObsJson, ParserRejectsMalformedInput) {
  EXPECT_FALSE(obs::json_valid(""));
  EXPECT_FALSE(obs::json_valid("{"));
  EXPECT_FALSE(obs::json_valid("[1,2,]"));
  EXPECT_FALSE(obs::json_valid("{\"a\":1} trailing"));
  EXPECT_FALSE(obs::json_valid("{'a':1}"));
  EXPECT_FALSE(obs::json_valid("nulll"));
  EXPECT_THROW(obs::json_parse("{\"a\":}"), ParseError);
  EXPECT_TRUE(obs::json_valid("null"));
  EXPECT_TRUE(obs::json_valid("[ ]"));
}

TEST(ObsJson, ParserDecodesEscapes) {
  obs::JsonValue doc = obs::json_parse(R"({"s":"a\tbA\n"})");
  EXPECT_EQ(doc.at("s").string, "a\tbA\n");
}

// ---------------------------------------------------------------------------
// Tracer

#ifndef HCG_DISABLE_TRACING

/// Enables tracing for one test, restoring the previous state after.
class TracerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::instance().set_enabled(true);
    obs::Tracer::instance().clear();
  }
  void TearDown() override {
    obs::Tracer::instance().clear();
    obs::Tracer::instance().set_enabled(false);
  }
};

TEST_F(TracerFixture, SpansNestIntoATree) {
  {
    HCG_TRACE_SCOPE("outer");
    {
      HCG_TRACE_SCOPE("inner_a");
    }
    {
      HCG_TRACE_SCOPE("inner_b");
      HCG_TRACE_SCOPE("leaf");
    }
  }
  const auto events = obs::Tracer::instance().events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[0].parent, -1);
  EXPECT_EQ(events[1].name, "inner_a");
  EXPECT_EQ(events[1].parent, 0);
  EXPECT_EQ(events[2].name, "inner_b");
  EXPECT_EQ(events[2].parent, 0);
  EXPECT_EQ(events[3].name, "leaf");
  EXPECT_EQ(events[3].depth, 2);
  EXPECT_EQ(events[3].parent, 2);
  for (const auto& e : events) {
    EXPECT_GE(e.dur_ns, 0) << e.name << " was never closed";
    EXPECT_GE(e.start_ns, 0);
  }
  // A child must start no earlier and end no later than its parent.
  EXPECT_GE(events[3].start_ns, events[2].start_ns);
  EXPECT_LE(events[3].start_ns + events[3].dur_ns,
            events[2].start_ns + events[2].dur_ns);
}

TEST_F(TracerFixture, DisabledTracerRecordsNothing) {
  obs::Tracer::instance().set_enabled(false);
  {
    HCG_TRACE_SCOPE("ignored");
  }
  EXPECT_TRUE(obs::Tracer::instance().events().empty());
}

TEST_F(TracerFixture, ThreadsGetDistinctOrdinals) {
  {
    HCG_TRACE_SCOPE("main_span");
  }
  std::thread worker([] { HCG_TRACE_SCOPE("worker_span"); });
  worker.join();
  const auto events = obs::Tracer::instance().events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
  // Spans on different threads do not nest into each other.
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_EQ(events[1].parent, -1);
}

TEST_F(TracerFixture, TraceJsonIsChromeTraceEventFormat) {
  {
    HCG_TRACE_SCOPE("phase");
    HCG_TRACE_SCOPE("step");
  }
  const std::string text = obs::Tracer::instance().trace_json();
  ASSERT_TRUE(obs::json_valid(text)) << text;
  obs::JsonValue doc = obs::json_parse(text);
  ASSERT_TRUE(doc.is_array());
  ASSERT_EQ(doc.array.size(), 2u);
  for (const obs::JsonValue& event : doc.array) {
    ASSERT_TRUE(event.is_object());
    EXPECT_EQ(event.at("ph").string, "X");
    EXPECT_NE(event.at("name").string, "");
    EXPECT_GE(event.at("ts").number, 0.0);
    EXPECT_GE(event.at("dur").number, 0.0);
    EXPECT_NE(event.find("pid"), nullptr);
    EXPECT_NE(event.find("tid"), nullptr);
  }
}

TEST_F(TracerFixture, SummaryIndentsChildren) {
  {
    HCG_TRACE_SCOPE("root");
    HCG_TRACE_SCOPE("child");
  }
  const std::string text = obs::Tracer::instance().summary();
  EXPECT_NE(text.find("root"), std::string::npos);
  EXPECT_NE(text.find("  child"), std::string::npos);
  EXPECT_NE(text.find("ms"), std::string::npos);
}

#endif  // HCG_DISABLE_TRACING

TEST(ObsTrace, EmptyTraceIsAValidJsonArray) {
  obs::Tracer::instance().clear();
  const std::string text = obs::Tracer::instance().trace_json();
  obs::JsonValue doc = obs::json_parse(text);
  EXPECT_TRUE(doc.is_array());
  EXPECT_TRUE(doc.array.empty());
}

// ---------------------------------------------------------------------------
// Metrics

TEST(ObsMetrics, RegistryDeduplicatesByName) {
  obs::Counter& a = obs::Registry::instance().counter("test.dedup");
  obs::Counter& b = obs::Registry::instance().counter("test.dedup");
  EXPECT_EQ(&a, &b);
}

TEST(ObsMetrics, RegistryJsonIsWellFormed) {
  obs::Registry::instance().counter("test.json.counter");
  obs::Registry::instance().gauge("test.json.gauge");
  obs::Registry::instance().histogram("test.json.histogram");
  const std::string text = obs::Registry::instance().to_json();
  ASSERT_TRUE(obs::json_valid(text)) << text;
  obs::JsonValue doc = obs::json_parse(text);
  EXPECT_NE(doc.at("counters").find("test.json.counter"), nullptr);
  EXPECT_NE(doc.at("gauges").find("test.json.gauge"), nullptr);
  EXPECT_NE(doc.at("histograms").find("test.json.histogram"), nullptr);
}

#ifndef HCG_DISABLE_TRACING

TEST(ObsMetrics, CounterAccumulates) {
  obs::Counter& c = obs::Registry::instance().counter("test.counter.acc");
  c.reset();
  c.add();
  c.add(9);
  EXPECT_EQ(c.value(), 10u);
}

TEST(ObsMetrics, GaugeKeepsLastValue) {
  obs::Gauge& g = obs::Registry::instance().gauge("test.gauge.last");
  g.set(1.5);
  g.set(-2.25);
  EXPECT_EQ(g.value(), -2.25);
}

TEST(ObsMetrics, HistogramTracksStatistics) {
  obs::Histogram& h = obs::Registry::instance().histogram("test.hist.stats");
  h.reset();
  h.observe(1.0);
  h.observe(4.0);
  h.observe(1000.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 1005.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_DOUBLE_EQ(h.mean(), 335.0);
  // Bucketed quantiles are approximate: p0 lives in [1,2), p100 in the
  // bucket containing 1000 = [512,2048).
  EXPECT_GE(h.quantile(0.0), 1.0);
  EXPECT_LE(h.quantile(0.0), 2.0);
  EXPECT_GE(h.quantile(1.0), 512.0);
  EXPECT_LE(h.quantile(1.0), 2048.0);
}

TEST(ObsMetrics, HistogramPercentileAccessors) {
  obs::Histogram& h = obs::Registry::instance().histogram("test.hist.pctl");
  h.reset();
  // 100 samples: 97 fast ones in [2,4), three stragglers in [1024,2048).
  for (int i = 0; i < 97; ++i) h.observe(3.0);
  for (int i = 0; i < 3; ++i) h.observe(1500.0);
  EXPECT_EQ(h.p50(), h.quantile(0.50));
  EXPECT_EQ(h.p95(), h.quantile(0.95));
  EXPECT_EQ(h.p99(), h.quantile(0.99));
  // p50/p95 sit in the fast bucket, p99 must surface the straggler bucket.
  EXPECT_GE(h.p50(), 2.0);
  EXPECT_LT(h.p50(), 4.0);
  EXPECT_GE(h.p95(), 2.0);
  EXPECT_LT(h.p95(), 4.0);
  EXPECT_GE(h.p99(), 1024.0);
  EXPECT_LE(h.p99(), 2048.0);
  // Empty histogram: every percentile reads zero.
  h.reset();
  EXPECT_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.p99(), 0.0);
}

TEST(ObsMetrics, RegistryJsonCarriesP99) {
  obs::Histogram& h = obs::Registry::instance().histogram("test.hist.p99json");
  h.reset();
  h.observe(8.0);
  const obs::JsonValue doc =
      obs::json_parse(obs::Registry::instance().to_json());
  const obs::JsonValue* hist =
      doc.at("histograms").find("test.hist.p99json");
  ASSERT_NE(hist, nullptr);
  ASSERT_NE(hist->find("p99"), nullptr);
  EXPECT_DOUBLE_EQ(hist->find("p99")->number, h.p99());
}

#endif  // HCG_DISABLE_TRACING

// ---------------------------------------------------------------------------
// Logging helpers

TEST(ObsLogging, ParseLogLevelAcceptsKnownNames) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_log_level(""), std::nullopt);
}

// ---------------------------------------------------------------------------
// Selection history statistics

TEST(ObsHistory, LookupCountsHitsAndMisses) {
  synth::SelectionHistory history;
  const std::vector<Shape> shapes = {Shape{1024}};
  EXPECT_FALSE(history.lookup("FFT", DataType::kComplex64, shapes).has_value());
  history.store("FFT", DataType::kComplex64, shapes, "fft_radix4");
  EXPECT_TRUE(history.lookup("FFT", DataType::kComplex64, shapes).has_value());
  EXPECT_TRUE(history.lookup("FFT", DataType::kComplex64, shapes).has_value());
  EXPECT_EQ(history.hits(), 2u);
  EXPECT_EQ(history.misses(), 1u);
  history.reset_stats();
  EXPECT_EQ(history.hits(), 0u);
  EXPECT_EQ(history.misses(), 0u);
}

// ---------------------------------------------------------------------------
// Report

TEST(ObsReport, RoundTripsThroughJson) {
  obs::Report report;
  report.model = "fig4";
  report.tool = "hcg";
  report.isa = "neon";
  report.actor_count = 7;
  report.phases = {{"resolve", 0.5}, {"emit", 1.25}};
  obs::ReportIntensive fft;
  fft.actor = "FFT1";
  fft.actor_type = "FFT";
  fft.dtype = "c64";
  fft.impl = "fft_radix4";
  fft.selected = true;
  fft.candidates = {{"fft_dit", 2.0}, {"fft_radix4", 1.0}};
  report.intensive.push_back(fft);
  obs::ReportRegion region;
  region.actors = {"Sub", "Shr"};
  region.nodes = 2;
  region.used_simd = true;
  region.batch_size = 4;
  region.batch_count = 256;
  region.scalar_remainder = 2;
  region.instructions = {"vsubq_s32", "vhaddq_s32"};
  report.regions.push_back(region);
  report.emit_bytes = 4096;
  report.fused_regions = 1;
  report.history_hits = 3;
  report.history_misses = 1;
  report.compile_ms = 120.0;
  report.compile_command = "cc -shared model.c";

  const std::string text = report.to_json(/*include_metrics=*/true);
  ASSERT_TRUE(obs::json_valid(text)) << text;
  obs::JsonValue doc = obs::json_parse(text);
  EXPECT_EQ(doc.at("schema").string, "hcg-report-v1");
  EXPECT_EQ(doc.at("model").string, "fig4");
  EXPECT_EQ(doc.at("tool").string, "hcg");
  EXPECT_EQ(doc.at("isa").string, "neon");
  EXPECT_EQ(doc.at("actor_count").number, 7.0);
  ASSERT_EQ(doc.at("phases").array.size(), 2u);
  EXPECT_EQ(doc.at("phases").array[1].at("name").string, "emit");
  EXPECT_EQ(doc.at("phases").array[1].at("ms").number, 1.25);
  const obs::JsonValue& intensive = doc.at("intensive").array.at(0);
  EXPECT_EQ(intensive.at("actor").string, "FFT1");
  EXPECT_EQ(intensive.at("impl").string, "fft_radix4");
  ASSERT_EQ(intensive.at("candidates").array.size(), 2u);
  EXPECT_EQ(intensive.at("candidates").array[1].at("impl").string,
            "fft_radix4");
  const obs::JsonValue& r = doc.at("regions").array.at(0);
  EXPECT_TRUE(r.at("used_simd").boolean);
  EXPECT_EQ(r.at("scalar_remainder").number, 2.0);
  ASSERT_EQ(r.at("instructions").array.size(), 2u);
  EXPECT_EQ(r.at("instructions").array[0].string, "vsubq_s32");
  EXPECT_EQ(doc.at("history").at("hits").number, 3.0);
  EXPECT_EQ(doc.at("toolchain").at("compile_ms").number, 120.0);
  EXPECT_NE(doc.find("metrics"), nullptr);

  // Without metrics the snapshot is omitted entirely.
  obs::JsonValue lean = obs::json_parse(report.to_json(false));
  EXPECT_EQ(lean.find("metrics"), nullptr);

  // The toolchain section appears only once the code was actually compiled.
  obs::JsonValue fresh = obs::json_parse(obs::Report{}.to_json(false));
  EXPECT_EQ(fresh.find("toolchain"), nullptr);
}

TEST(ObsReport, SimdCoverageIsNodeWeighted) {
  obs::Report report;
  EXPECT_EQ(report.simd_coverage(), 0.0);
  obs::ReportRegion simd;
  simd.nodes = 3;
  simd.used_simd = true;
  obs::ReportRegion scalar;
  scalar.nodes = 1;
  scalar.used_simd = false;
  report.regions = {simd, scalar};
  EXPECT_DOUBLE_EQ(report.simd_coverage(), 0.75);
}

TEST(ObsReport, EmitModelPopulatesReport) {
  Model model = resolved(benchmodels::paper_fig4_model(1024));
  codegen::EmitConfig config;
  config.tool_name = "hcg";
  config.batch_mode = codegen::BatchMode::kRegions;
  config.isa = &isa::builtin("neon_sim");
  config.select_intensive = true;
  synth::SelectionHistory history;
  config.history = &history;
  codegen::GeneratedCode code = codegen::emit_model(model, config);

  const obs::Report& report = code.report;
  EXPECT_EQ(report.tool, "hcg");
  EXPECT_EQ(report.isa, "neon_sim");
  EXPECT_EQ(report.actor_count, model.actor_count());
  EXPECT_FALSE(report.phases.empty());
  std::set<std::string> phase_names;
  for (const auto& phase : report.phases) {
    phase_names.insert(phase.name);
    EXPECT_GE(phase.ms, 0.0);
  }
  EXPECT_TRUE(phase_names.count("resolve"));
  EXPECT_TRUE(phase_names.count("emit"));
  ASSERT_FALSE(report.regions.empty());
  int simd_instructions = 0;
  for (const auto& region : report.regions) {
    EXPECT_GT(region.nodes, 0);
    simd_instructions += static_cast<int>(region.instructions.size());
  }
  EXPECT_EQ(simd_instructions,
            static_cast<int>(code.simd_instructions.size()));
  EXPECT_EQ(report.emit_bytes, code.source.size());
  EXPECT_EQ(report.fused_regions, code.fused_regions);
  ASSERT_TRUE(obs::json_valid(report.to_json()));
}

}  // namespace
}  // namespace hcg
