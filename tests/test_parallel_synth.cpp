// Tests for the parallel synthesis engine: the support thread pool, the
// thread-safe SelectionHistory, single-flight pre-calculation dedup, and
// byte-identical generation across job counts.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "benchmodels/benchmodels.hpp"
#include "codegen/generator.hpp"
#include "isa/builtin.hpp"
#include "model/builder.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"
#include "synth/history.hpp"
#include "synth/intensive.hpp"

namespace hcg {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsTasksAndReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
  EXPECT_EQ(pool.submitted(), 64u);
}

TEST(ThreadPool, SizeOneRunsInlineOnCallerThread) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  auto future = pool.submit([&] { seen = std::this_thread::get_id(); });
  future.get();
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto future = pool.submit(
      []() -> int { throw SynthesisError("boom"); });
  EXPECT_THROW(future.get(), SynthesisError);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
  }  // destructor must wait for all 32, not drop queued tasks
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, DefaultParallelismOverride) {
  ThreadPool::set_default_parallelism(3);
  EXPECT_EQ(ThreadPool::default_parallelism(), 3);
  EXPECT_EQ(ThreadPool(0).size(), 3);
  ThreadPool::set_default_parallelism(0);  // back to env/hardware
  EXPECT_GE(ThreadPool::default_parallelism(), 1);
}

// ---------------------------------------------------------------------------
// SelectionHistory under contention
// ---------------------------------------------------------------------------

TEST(ParallelHistory, HammerFromEightThreads) {
  synth::SelectionHistory history;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 400;
  constexpr int kKeySpace = 32;
  std::atomic<std::uint64_t> lookups{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int op = 0; op < kOpsPerThread; ++op) {
        const int k = (t * 7 + op) % kKeySpace;
        const Shape shape({16 << (k / 8)});
        const std::string type = "FFT" + std::to_string(k % 8);
        if (op % 3 == 0) {
          history.store(type, DataType::kComplex64, {shape},
                        "impl" + std::to_string(k));
        } else {
          (void)history.lookup(type, DataType::kComplex64, {shape});
          lookups.fetch_add(1);
        }
        if (op % 97 == 0) {
          (void)history.serialize();  // concurrent reader of every shard
          (void)history.size();
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Every (type, shape) combination was stored at least once.
  EXPECT_EQ(history.size(), static_cast<std::size_t>(kKeySpace));
  // Statistics did not lose updates.
  EXPECT_EQ(history.hits() + history.misses(), lookups.load());
  // The merged text form round-trips.
  synth::SelectionHistory copy =
      synth::SelectionHistory::deserialize(history.serialize());
  EXPECT_EQ(copy.size(), history.size());
}

// ---------------------------------------------------------------------------
// Single-flight dedup
// ---------------------------------------------------------------------------

codegen::EmitConfig hcg_config(int jobs, synth::SelectionHistory* history) {
  codegen::EmitConfig config;
  config.tool_name = "hcg";
  config.batch_mode = codegen::BatchMode::kRegions;
  config.isa = &isa::builtin("neon_sim");
  config.select_intensive = true;
  config.history = history;
  config.fold_scalar_expressions = true;
  config.reuse_buffers = true;
  config.jobs = jobs;
  return config;
}

TEST(SingleFlight, DuplicateKeysMeasureOnce) {
  // 32 actors over 16 distinct (type, dtype, shapes) keys.
  const Model model = benchmodels::intensive_farm_model(32, false);
  obs::Counter& precalc =
      obs::Registry::instance().counter("synth.precalc.runs");
  obs::Counter& dedup =
      obs::Registry::instance().counter("synth.pool.dedup_hits");
  const std::uint64_t precalc_before = precalc.value();
  const std::uint64_t dedup_before = dedup.value();

  codegen::GeneratedCode code =
      codegen::emit_model(model, hcg_config(/*jobs=*/4, nullptr));

  EXPECT_EQ(code.intensive_choices.size(), 32u);
#ifndef HCG_DISABLE_TRACING  // metric updates are no-ops in notrace builds
  // Every distinct key ran exactly one pre-calculation sweep...
  EXPECT_EQ(precalc.value() - precalc_before, 16u);
  // ...and every duplicate shared it through the single-flight layer.
  EXPECT_EQ(dedup.value() - dedup_before, 16u);
#endif
  // Duplicates resolved to the same implementation as their leader.
  for (int i = 0; i < 16; ++i) {
    const std::string kinds[] = {"fft", "dct", "conv", "mm"};
    const std::string name = kinds[i % 4] + std::to_string(i);
    const std::string dup_name = kinds[i % 4] + std::to_string(i + 16);
    ASSERT_TRUE(code.intensive_choices.count(name)) << name;
    ASSERT_TRUE(code.intensive_choices.count(dup_name)) << dup_name;
    EXPECT_EQ(code.intensive_choices.at(name),
              code.intensive_choices.at(dup_name));
  }
}

TEST(SingleFlight, MemoizesAtOneJob) {
  // The in-run cache must also collapse duplicates when everything is
  // serial-inline (--jobs 1) and no persistent history is attached.
  const Model dup_model = benchmodels::intensive_farm_model(40, false);
  obs::Counter& precalc =
      obs::Registry::instance().counter("synth.precalc.runs");
  const std::uint64_t before = precalc.value();
  codegen::GeneratedCode code =
      codegen::emit_model(dup_model, hcg_config(/*jobs=*/1, nullptr));
  EXPECT_EQ(code.intensive_choices.size(), 40u);
#ifndef HCG_DISABLE_TRACING
  EXPECT_EQ(precalc.value() - before, 16u);  // 40 actors, 16 distinct keys
#endif
}

// ---------------------------------------------------------------------------
// Determinism across job counts
// ---------------------------------------------------------------------------

/// Four disconnected Add/Mul chains over f32[64]: four independent batch
/// regions, so Algorithm 2 runs concurrently at jobs > 1.
Model multi_region_model() {
  ModelBuilder b("four_chains");
  for (int chain = 0; chain < 4; ++chain) {
    const std::string tag = std::to_string(chain);
    PortRef x = b.inport("x" + tag, DataType::kFloat32, Shape{64});
    PortRef w = b.inport("w" + tag, DataType::kFloat32, Shape{64});
    PortRef a = b.actor("add" + tag, "Add", {x, w});
    PortRef m = b.actor("mul" + tag, "Mul", {a, w});
    PortRef s = b.actor("sub" + tag, "Sub", {m, x});
    b.outport("y" + tag, s);
  }
  return b.take();
}

TEST(ParallelDeterminism, BatchRegionsByteIdenticalAcrossJobs) {
  const Model model = multi_region_model();
  codegen::GeneratedCode serial =
      codegen::emit_model(model, hcg_config(/*jobs=*/1, nullptr));
  codegen::GeneratedCode parallel =
      codegen::emit_model(model, hcg_config(/*jobs=*/8, nullptr));
  EXPECT_EQ(serial.source, parallel.source);
  EXPECT_EQ(serial.simd_instructions, parallel.simd_instructions);
  EXPECT_EQ(serial.fused_regions, parallel.fused_regions);
}

TEST(ParallelDeterminism, IntensiveByteIdenticalWithWarmHistory) {
  const Model model = benchmodels::intensive_farm_model(24, true);

  // Warm the history once (selections pinned from here on).
  synth::SelectionHistory history;
  codegen::emit_model(model, hcg_config(/*jobs=*/0, &history));
  EXPECT_EQ(history.size(), 24u);
  history.reset_stats();

  codegen::GeneratedCode serial =
      codegen::emit_model(model, hcg_config(/*jobs=*/1, &history));
  codegen::GeneratedCode parallel =
      codegen::emit_model(model, hcg_config(/*jobs=*/8, &history));

  // Both runs answered every actor from the warm history...
  EXPECT_EQ(history.misses(), 0u);
  EXPECT_EQ(history.hits(), 48u);
  // ...and produced byte-identical C.
  EXPECT_EQ(serial.source, parallel.source);
  EXPECT_EQ(serial.intensive_choices, parallel.intensive_choices);
}

}  // namespace
}  // namespace hcg
