// Golden-file regression tests: the exact generated source for each paper
// model and tool is pinned under tests/golden/.  Any change to the emitters
// shows up as a reviewable diff.
//
// Algorithm 1's choices are timing-dependent, so each case pre-seeds the
// selection history with a pinned implementation — which doubles as a test
// that the history really does make generation reproducible.
//
// Regenerate after an intentional emitter change with:
//   HCG_UPDATE_GOLDEN=1 ./build/tests/hcg_integration_tests
//       --gtest_filter='Golden/*'
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "benchmodels/benchmodels.hpp"
#include "codegen/generator.hpp"
#include "isa/builtin.hpp"
#include "support/fileio.hpp"

namespace hcg {
namespace {

struct GoldenCase {
  const char* name;   // golden file stem
  int model;          // index into paper_models()
  const char* tool;   // "hcg" | "simulink" | "dfsynth" | "scattered"
};

constexpr GoldenCase kCases[] = {
    {"fft_hcg", 0, "hcg"},
    {"fft_dfsynth", 0, "dfsynth"},
    {"dct_simulink", 1, "simulink"},
    {"conv_hcg", 2, "hcg"},
    {"highpass_hcg", 3, "hcg"},
    {"highpass_scattered", 3, "scattered"},
    {"lowpass_simulink", 4, "simulink"},
    {"fir_hcg", 5, "hcg"},
    {"fir_dfsynth", 5, "dfsynth"},
};

std::filesystem::path golden_dir() {
  return std::filesystem::path(HCG_GOLDEN_DIR);
}

/// Pins every intensive choice the paper models can make, so generation is
/// time-independent.
synth::SelectionHistory pinned_history() {
  synth::SelectionHistory history;
  history.store("FFT", DataType::kComplex64, {Shape({1024})}, "fft_radix2");
  history.store("DCT", DataType::kFloat32, {Shape({256})}, "dct_lee");
  history.store("Conv", DataType::kFloat32, {Shape({1024}), Shape({64})},
                "conv_blocked");
  return history;
}

std::string generate_case(const GoldenCase& c) {
  std::vector<Model> models = benchmodels::paper_models();
  const Model& model = models.at(static_cast<size_t>(c.model));
  synth::SelectionHistory history = pinned_history();
  std::unique_ptr<codegen::Generator> tool;
  if (std::string(c.tool) == "hcg") {
    tool = codegen::make_hcg_generator(isa::builtin("neon"), &history);
  } else if (std::string(c.tool) == "simulink") {
    tool = codegen::make_simulink_generator();
  } else if (std::string(c.tool) == "scattered") {
    tool = codegen::make_simulink_generator(&isa::builtin("sse"));
  } else {
    tool = codegen::make_dfsynth_generator();
  }
  return tool->generate(model).source;
}

class Golden : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(Golden, GeneratedSourceMatchesPinnedFile) {
  const GoldenCase& c = GetParam();
  const std::string source = generate_case(c);
  const auto path = golden_dir() / (std::string(c.name) + ".c");

  if (std::getenv("HCG_UPDATE_GOLDEN") != nullptr) {
    write_file(path, source);
    GTEST_SKIP() << "updated " << path;
  }
  ASSERT_TRUE(std::filesystem::exists(path))
      << path << " missing — run once with HCG_UPDATE_GOLDEN=1";
  EXPECT_EQ(source, read_file(path))
      << "generated source for " << c.name
      << " changed; if intentional, regenerate with HCG_UPDATE_GOLDEN=1";
}

std::string golden_name(const ::testing::TestParamInfo<GoldenCase>& info) {
  return info.param.name;
}

INSTANTIATE_TEST_SUITE_P(Cases, Golden, ::testing::ValuesIn(kCases),
                         golden_name);

}  // namespace
}  // namespace hcg
