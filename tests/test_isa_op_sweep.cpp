// Exhaustive instruction-table sweep: for EVERY single-op instruction in
// every compilable built-in table (neon_sim / sse / avx2), build a
// one-actor model of that op and element type, generate code with HCG,
// compile it, and compare bit-for-bit (integers) or to float tolerance
// against the interpreter oracle.  This covers each instruction's code
// template, each type's load/store/dup, and the scalar remainder path
// (the array length is chosen to leave a remainder).
#include <gtest/gtest.h>

#include "actors/resolve.hpp"
#include "codegen/generator.hpp"
#include "isa/builtin.hpp"
#include "model/builder.hpp"
#include "support/rng.hpp"
#include "toolchain/compiled_model.hpp"
#include "vm/interpreter.hpp"

namespace hcg {
namespace {

struct SweepCase {
  std::string isa;
  std::string instruction;
  BatchOp op;
  DataType type;
  int lanes;
};

std::string actor_type_for(BatchOp op) {
  switch (op) {
    case BatchOp::kAnd: return "BitAnd";
    case BatchOp::kOr: return "BitOr";
    case BatchOp::kXor: return "BitXor";
    case BatchOp::kNot: return "BitNot";
    case BatchOp::kMulC: return "Gain";
    case BatchOp::kAddC: return "Bias";
    case BatchOp::kSel: return "Switch";
    default: return std::string(op_name(op));
  }
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (const char* name : {"neon_sim", "sse", "avx2"}) {
    const isa::VectorIsa& table = isa::builtin(name);
    for (const isa::Instruction& ins : table.instructions) {
      if (ins.node_count() != 1) continue;  // compounds covered elsewhere
      cases.push_back(
          SweepCase{name, ins.name, ins.root_op(), ins.type, ins.lanes});
    }
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  return info.param.isa + "_" + info.param.instruction;
}

/// Workload tuned per op so semantics agree across scalar/SIMD lowerings:
/// bounded magnitudes (no wraparound) and strictly positive divisors.
Tensor sweep_input(const SweepCase& c, int n, std::uint64_t seed,
                   bool divisor_role) {
  Rng rng(seed);
  Tensor t(c.type, Shape({n}));
  for (int i = 0; i < n; ++i) {
    if (is_float(c.type)) {
      double v = rng.uniform_real(0.25, 2.0);
      if (!divisor_role && rng.uniform_int(0, 1)) v = -v;
      t.set_double(i, v);
    } else {
      const int bits = bit_width(c.type);
      // Stay well inside range so x+y, x*y, |x-y| never overflow.
      const std::int64_t hi = (1LL << (bits / 2)) - 2;
      std::int64_t v = rng.uniform_int(divisor_role ? 1 : -hi, hi);
      if (is_unsigned_int(c.type) && v < 0) v = -v;
      t.set_double(i, static_cast<double>(v));
    }
  }
  return t;
}

class IsaOpSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(IsaOpSweep, GeneratedInstructionMatchesOracle) {
  const SweepCase& c = GetParam();
  // Length = 2 full batches + a remainder (when lanes > 1).
  const int n = 2 * c.lanes + (c.lanes > 1 ? c.lanes / 2 + 1 : 1);

  ModelBuilder b("sweep");
  std::vector<PortRef> inputs;
  const std::string type = actor_type_for(c.op);
  const int ports = arity(c.op);
  for (int p = 0; p < ports; ++p) {
    inputs.push_back(b.inport("x" + std::to_string(p), c.type, Shape({n})));
  }
  PortRef out = [&] {
    if (has_immediate(c.op)) {
      return b.actor("op", type, inputs, {{"amount", "3"}});
    }
    if (c.op == BatchOp::kMulC) {
      return b.actor("op", type, inputs, {{"gain", "3"}});
    }
    if (c.op == BatchOp::kAddC) {
      return b.actor("op", type, inputs, {{"bias", "2"}});
    }
    return b.actor("op", type, inputs);
  }();
  b.outport("y", out);
  Model model = resolved(b.take());

  std::vector<Tensor> workload;
  for (int p = 0; p < ports; ++p) {
    const bool divisor = (c.op == BatchOp::kDiv && p == 1) ||
                         c.op == BatchOp::kRecp || c.op == BatchOp::kSqrt;
    workload.push_back(
        sweep_input(c, n, 77 + static_cast<unsigned>(p), divisor));
  }

  Interpreter oracle(model);
  oracle.init();
  std::vector<Tensor> expected = oracle.step(workload);

  auto generator = codegen::make_hcg_generator(isa::builtin(c.isa));
  codegen::GeneratedCode code = generator->generate(model);
  // The sweep only covers instructions Algorithm 2 actually selected.
  ASSERT_FALSE(code.simd_instructions.empty()) << code.source;
  EXPECT_EQ(code.simd_instructions.front(), c.instruction);

  toolchain::CompiledModel compiled(code);
  compiled.init();
  std::vector<Tensor> got = compiled.step_tensors(model, workload);

  const double tolerance = is_float(c.type) ? 1e-5 : 0.0;
  EXPECT_LE(got[0].max_abs_difference(expected[0]), tolerance)
      << "instruction " << c.instruction << " on " << c.isa << "\n"
      << code.source;
}

INSTANTIATE_TEST_SUITE_P(AllSingleOps, IsaOpSweep,
                         ::testing::ValuesIn(sweep_cases()), case_name);

}  // namespace
}  // namespace hcg
