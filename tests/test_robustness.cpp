// Fault-tolerance tests (docs/ROBUSTNESS.md): the fault-injection registry,
// the hardened subprocess runner, degraded-mode Algorithm 1, crash-safe
// selection-history persistence, and the hcgc exit-code contract.
//
// Every fixture arms the fault registry explicitly (overriding whatever
// HCG_FAULTS the environment carries) except the EnvFaults tests, which
// deliberately run under the ambient spec — CI sweeps a small HCG_FAULTS
// matrix over this binary and the pipeline must survive every cell.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <thread>

#include "benchmodels/benchmodels.hpp"
#include "actors/resolve.hpp"
#include "codegen/generator.hpp"
#include "isa/builtin.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/faults.hpp"
#include "support/fileio.hpp"
#include "support/subprocess.hpp"
#include "support/thread_pool.hpp"
#include "synth/history.hpp"
#include "synth/intensive.hpp"
#include "toolchain/compiled_model.hpp"
#include "vm/interpreter.hpp"

namespace hcg {
namespace {

// With -DHCG_DISABLE_FAULTS=ON the probes compile to constants, so every
// test that depends on a fault actually firing must skip (the registry
// itself — parsing, clear() — still works and stays tested).
#ifdef HCG_DISABLE_FAULTS
#define HCG_SKIP_IF_FAULTS_DISABLED() \
  GTEST_SKIP() << "fault probes compiled to no-ops (HCG_DISABLE_FAULTS)"
#else
#define HCG_SKIP_IF_FAULTS_DISABLED() (void)0
#endif

/// Arms a spec for the test body and guarantees a disarmed registry after,
/// whatever the test throws.
class ArmedFaults {
 public:
  explicit ArmedFaults(std::string_view spec) {
    faults::Registry::instance().configure(spec);
  }
  ~ArmedFaults() { faults::Registry::instance().clear(); }
};

std::uint64_t counter_value(const char* name) {
  return obs::Registry::instance().counter(name).value();
}

// ---------------------------------------------------------------------------
// Fault-spec grammar and matching
// ---------------------------------------------------------------------------

TEST(FaultSpec, SiteMatchFiresConfiguredAction) {
  HCG_SKIP_IF_FAULTS_DISABLED();
  ArmedFaults armed("a.b=fail");
  EXPECT_EQ(faults::probe("a.b"), faults::Action::kFail);
  EXPECT_EQ(faults::probe("a.c"), faults::Action::kNone);
  EXPECT_EQ(faults::Registry::instance().injected(), 1u);
}

TEST(FaultSpec, AllActionsParse) {
  HCG_SKIP_IF_FAULTS_DISABLED();
  ArmedFaults armed("a=fail,b=throw,c=torn,d=timeout");
  EXPECT_EQ(faults::probe("a"), faults::Action::kFail);
  EXPECT_EQ(faults::probe("b"), faults::Action::kThrow);
  EXPECT_EQ(faults::probe("c"), faults::Action::kTorn);
  EXPECT_EQ(faults::probe("d"), faults::Action::kTimeout);
}

TEST(FaultSpec, NthOccurrenceFiresExactlyOnce) {
  HCG_SKIP_IF_FAULTS_DISABLED();
  ArmedFaults armed("x=throw@2");
  EXPECT_EQ(faults::probe("x"), faults::Action::kNone);
  EXPECT_EQ(faults::probe("x"), faults::Action::kThrow);
  EXPECT_EQ(faults::probe("x"), faults::Action::kNone);
  EXPECT_EQ(faults::Registry::instance().injected(), 1u);
}

TEST(FaultSpec, StickyOccurrenceFiresFromNOnward) {
  HCG_SKIP_IF_FAULTS_DISABLED();
  ArmedFaults armed("x=fail@2+");
  EXPECT_EQ(faults::probe("x"), faults::Action::kNone);
  EXPECT_EQ(faults::probe("x"), faults::Action::kFail);
  EXPECT_EQ(faults::probe("x"), faults::Action::kFail);
}

TEST(FaultSpec, KeyGlobSelectsMatchingKeysOnly) {
  HCG_SKIP_IF_FAULTS_DISABLED();
  ArmedFaults armed("precalc.measure:fft_radix*=throw");
  EXPECT_EQ(faults::probe("precalc.measure", "fft_radix4"),
            faults::Action::kThrow);
  EXPECT_EQ(faults::probe("precalc.measure", "fft_dft"),
            faults::Action::kNone);
  EXPECT_EQ(faults::probe("other.site", "fft_radix4"), faults::Action::kNone);
}

TEST(FaultSpec, SiteGlobMatchesFamilies) {
  HCG_SKIP_IF_FAULTS_DISABLED();
  ArmedFaults armed("toolchain.*=fail");
  EXPECT_EQ(faults::probe("toolchain.compile"), faults::Action::kFail);
  EXPECT_EQ(faults::probe("toolchain.link"), faults::Action::kFail);
  EXPECT_EQ(faults::probe("fileio.write"), faults::Action::kNone);
}

TEST(FaultSpec, BadSpecsThrowParseError) {
  faults::Registry& registry = faults::Registry::instance();
  EXPECT_THROW(registry.configure("nonsense"), ParseError);
  EXPECT_THROW(registry.configure("a=explode"), ParseError);
  EXPECT_THROW(registry.configure("a=fail@zero"), ParseError);
  EXPECT_THROW(registry.configure("a=fail@0"), ParseError);
  EXPECT_THROW(registry.configure("=fail"), ParseError);
  registry.clear();
}

TEST(FaultSpec, EmptySpecDisarms) {
  faults::Registry& registry = faults::Registry::instance();
  registry.configure("a=fail");
  registry.configure("");
  EXPECT_FALSE(registry.active());
  EXPECT_EQ(faults::probe("a"), faults::Action::kNone);
}

TEST(FaultSpec, GlobMatcher) {
  EXPECT_TRUE(faults::glob_match("*", "anything"));
  EXPECT_TRUE(faults::glob_match("a*c", "abc"));
  EXPECT_TRUE(faults::glob_match("a*c", "ac"));
  EXPECT_TRUE(faults::glob_match("a?c", "abc"));
  EXPECT_FALSE(faults::glob_match("a?c", "ac"));
  EXPECT_FALSE(faults::glob_match("a*d", "abc"));
  EXPECT_TRUE(faults::glob_match("*fail*", "x-fail-y"));
}

#ifdef HCG_DISABLE_FAULTS
TEST(FaultSpec, DisabledProbesAreNoops) {
  ArmedFaults armed("a=fail");
  EXPECT_EQ(faults::probe("a"), faults::Action::kNone);
}
#endif

// ---------------------------------------------------------------------------
// Hardened subprocess runner
// ---------------------------------------------------------------------------

TEST(Subprocess, DecodesExitCodeAndCapturesOutput) {
  const SubprocessResult r =
      run_subprocess({"/bin/sh", "-c", "echo out; echo err >&2; exit 3"});
  EXPECT_EQ(r.kind, ExitKind::kExited);
  EXPECT_EQ(r.exit_code, 3);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.output.find("out"), std::string::npos);
  EXPECT_NE(r.output.find("err"), std::string::npos);
  EXPECT_NE(r.describe().find("exited with code 3"), std::string::npos);
}

TEST(Subprocess, DecodesTerminationSignal) {
  const SubprocessResult r =
      run_subprocess({"/bin/sh", "-c", "kill -SEGV $$"});
  EXPECT_EQ(r.kind, ExitKind::kSignaled);
  EXPECT_EQ(r.term_signal, SIGSEGV);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.describe().find("killed by signal"), std::string::npos);
}

TEST(Subprocess, TimeoutKillsHungChild) {
  SubprocessOptions options;
  options.timeout_seconds = 0.3;
  const SubprocessResult r =
      run_subprocess({"/bin/sh", "-c", "sleep 30"}, options);
  EXPECT_EQ(r.kind, ExitKind::kTimedOut);
  EXPECT_LT(r.wall_seconds, 10.0);  // killed, not waited out
  EXPECT_NE(r.describe().find("timed out"), std::string::npos);
}

TEST(Subprocess, MissingBinaryFailsWithoutRetry) {
  SubprocessOptions options;
  options.spawn_retries = 3;
  options.retry_backoff_seconds = 0.01;
  const SubprocessResult r =
      run_subprocess({"/nonexistent/hcg-test-binary"}, options);
  EXPECT_EQ(r.kind, ExitKind::kSpawnFailed);
  EXPECT_EQ(r.attempts, 1);  // ENOENT is permanent, never retried
  EXPECT_NE(r.error.find("exec"), std::string::npos);
}

TEST(Subprocess, InjectedTransientSpawnFailureIsRetried) {
  HCG_SKIP_IF_FAULTS_DISABLED();
  ArmedFaults armed("subprocess.spawn=fail@1");
  SubprocessOptions options;
  options.spawn_retries = 2;
  options.retry_backoff_seconds = 0.01;
  const SubprocessResult r =
      run_subprocess({"/bin/sh", "-c", "exit 0"}, options);
  EXPECT_TRUE(r.ok()) << r.describe();
  EXPECT_EQ(r.attempts, 2);
}

TEST(Subprocess, InjectedSpawnFailureExhaustsRetries) {
  HCG_SKIP_IF_FAULTS_DISABLED();
  ArmedFaults armed("subprocess.spawn=fail");
  SubprocessOptions options;
  options.spawn_retries = 1;
  options.retry_backoff_seconds = 0.01;
  const SubprocessResult r =
      run_subprocess({"/bin/sh", "-c", "exit 0"}, options);
  EXPECT_EQ(r.kind, ExitKind::kSpawnFailed);
  EXPECT_EQ(r.attempts, 2);
  EXPECT_NE(r.describe().find("spawn failed"), std::string::npos);
}

TEST(Subprocess, OutputIsTruncatedNotUnbounded) {
  SubprocessOptions options;
  options.max_capture_bytes = 1024;
  const SubprocessResult r = run_subprocess(
      {"/bin/sh", "-c", "yes x | head -c 100000"}, options);
  EXPECT_EQ(r.kind, ExitKind::kExited);
  EXPECT_LT(r.output.size(), 2048u);
  EXPECT_NE(r.output.find("[output truncated]"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Toolchain harness on top of the runner
// ---------------------------------------------------------------------------

codegen::GeneratedCode tiny_code(std::string source) {
  codegen::GeneratedCode code;
  code.source = std::move(source);
  code.model_name = "robust";
  code.tool_name = "test";
  code.init_symbol = "robust_init";
  code.step_symbol = "robust_step";
  return code;
}

constexpr const char* kGoodSource =
    "void robust_init(void) {}\n"
    "void robust_step(const void* const* in, void* const* out) {\n"
    "  (void)in; (void)out;\n"
    "}\n";

TEST(ToolchainRobust, CompilerAvailableDecodesMissingBinary) {
  EXPECT_FALSE(toolchain::compiler_available("/nonexistent/hcg-test-cc"));
}

TEST(ToolchainRobust, CompileErrorCarriesDecodedStatusAndLogTail) {
  if (!toolchain::compiler_available()) GTEST_SKIP() << "no host cc";
  try {
    toolchain::CompiledModel compiled(
        tiny_code("int broken(void) { return }\n"));
    FAIL() << "expected ToolchainError";
  } catch (const ToolchainError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("exited with code"), std::string::npos) << what;
    EXPECT_NE(what.find("error"), std::string::npos) << what;
    EXPECT_NE(what.find("source kept at"), std::string::npos) << what;
  }
}

TEST(ToolchainRobust, InjectedCompileFailureIsAToolchainError) {
  HCG_SKIP_IF_FAULTS_DISABLED();
  if (!toolchain::compiler_available()) GTEST_SKIP() << "no host cc";
  ArmedFaults armed("toolchain.compile=fail");
  EXPECT_THROW(toolchain::CompiledModel compiled(tiny_code(kGoodSource)),
               ToolchainError);
}

TEST(ToolchainRobust, InjectedCompileTimeoutReportsTimeout) {
  HCG_SKIP_IF_FAULTS_DISABLED();
  ArmedFaults armed("toolchain.compile=timeout");
  const std::uint64_t timeouts_before =
      counter_value("toolchain.compile_timeouts");
  try {
    toolchain::CompiledModel compiled(tiny_code(kGoodSource));
    FAIL() << "expected ToolchainError";
  } catch (const ToolchainError& e) {
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos);
  }
#ifndef HCG_DISABLE_TRACING
  EXPECT_EQ(counter_value("toolchain.compile_timeouts"), timeouts_before + 1);
#else
  (void)timeouts_before;  // counters are no-ops without tracing
#endif
}

TEST(ToolchainRobust, SecondCompileSucceedsAfterNthOccurrenceFault) {
  HCG_SKIP_IF_FAULTS_DISABLED();
  if (!toolchain::compiler_available()) GTEST_SKIP() << "no host cc";
  ArmedFaults armed("toolchain.compile=fail@1");
  EXPECT_THROW(toolchain::CompiledModel first(tiny_code(kGoodSource)),
               ToolchainError);
  toolchain::CompiledModel second(tiny_code(kGoodSource));
  second.init();  // loaded and callable
}

// ---------------------------------------------------------------------------
// Crash-safe selection history
// ---------------------------------------------------------------------------

TEST(HistoryDurability, SaveWritesVersionHeaderAndRoundTrips) {
  TempDir dir;
  const auto path = dir.path() / "history.txt";
  synth::SelectionHistory h;
  h.store("FFT", DataType::kComplex64, {Shape({1024})}, "fft_radix4");
  h.save(path);
  const std::string text = read_file(path);
  EXPECT_EQ(text.rfind("# hcg-history-v1\n", 0), 0u) << text;
  synth::SelectionHistory::LoadStats stats;
  synth::SelectionHistory loaded = synth::SelectionHistory::load(path, &stats);
  EXPECT_EQ(stats.loaded, 1u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(*loaded.lookup("FFT", DataType::kComplex64, {Shape({1024})}),
            "fft_radix4");
}

TEST(HistoryDurability, LoadSkipsAndCountsCorruptLines) {
  TempDir dir;
  const auto path = dir.path() / "history.txt";
  write_file(path,
             "# hcg-history-v1\n"
             "FFT c64 1024 -> fft_radix4\n"
             "\x01\x02 binary garbage\n"
             "Conv f32 100 17 -> conv_direct\n"
             "FFT c64 51");  // torn final line, no newline
  const std::uint64_t dropped_before =
      counter_value("synth.history.dropped_lines");
  synth::SelectionHistory::LoadStats stats;
  synth::SelectionHistory loaded = synth::SelectionHistory::load(path, &stats);
  EXPECT_EQ(stats.loaded, 2u);
  EXPECT_EQ(stats.dropped, 2u);
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_TRUE(loaded.lookup("Conv", DataType::kFloat32,
                            {Shape({100}), Shape({17})}));
#ifndef HCG_DISABLE_TRACING
  EXPECT_EQ(counter_value("synth.history.dropped_lines"), dropped_before + 2);
#else
  (void)dropped_before;
#endif
}

TEST(HistoryDurability, LoadAcceptsEmptyAndCrlfFiles) {
  TempDir dir;
  const auto empty_path = dir.path() / "empty.txt";
  write_file(empty_path, "");
  synth::SelectionHistory::LoadStats stats;
  EXPECT_EQ(synth::SelectionHistory::load(empty_path, &stats).size(), 0u);
  EXPECT_EQ(stats.dropped, 0u);

  const auto crlf_path = dir.path() / "crlf.txt";
  write_file(crlf_path,
             "# hcg-history-v1\r\n"
             "FFT c64 1024 -> fft_radix4\r\n");
  synth::SelectionHistory loaded =
      synth::SelectionHistory::load(crlf_path, &stats);
  EXPECT_EQ(stats.loaded, 1u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(*loaded.lookup("FFT", DataType::kComplex64, {Shape({1024})}),
            "fft_radix4");  // no trailing \r on the value
}

TEST(HistoryDurability, TornWriteNeverExposesAPartialFile) {
  HCG_SKIP_IF_FAULTS_DISABLED();
  TempDir dir;
  const auto path = dir.path() / "history.txt";
  synth::SelectionHistory h;
  h.store("FFT", DataType::kComplex64, {Shape({1024})}, "fft_radix4");
  h.save(path);
  const std::string before = read_file(path);

  h.store("Conv", DataType::kFloat32, {Shape({100}), Shape({17})},
          "conv_direct");
  {
    ArmedFaults armed("fileio.write=torn");
    EXPECT_THROW(h.save(path), Error);
  }
  // The interrupted save must leave the previous complete file...
  EXPECT_EQ(read_file(path), before);
  synth::SelectionHistory::LoadStats stats;
  synth::SelectionHistory loaded = synth::SelectionHistory::load(path, &stats);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(loaded.size(), 1u);
  // ...and no temp-file debris next to it.
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path())) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 1u);

  h.save(path);  // healthy again after the fault clears
  EXPECT_EQ(synth::SelectionHistory::load(path).size(), 2u);
}

TEST(HistoryDurability, ConcurrentSavesLeaveOneWellFormedFile) {
  TempDir dir;
  const auto path = dir.path() / "history.txt";
  synth::SelectionHistory a;
  a.store("FFT", DataType::kComplex64, {Shape({1024})}, "fft_radix4");
  synth::SelectionHistory b;
  b.store("Conv", DataType::kFloat32, {Shape({100}), Shape({17})},
          "conv_direct");
  b.store("DCT", DataType::kFloat32, {Shape({256})}, "dct_lee");

  constexpr int kRounds = 50;
  std::thread t1([&] {
    for (int i = 0; i < kRounds; ++i) a.save(path);
  });
  std::thread t2([&] {
    for (int i = 0; i < kRounds; ++i) b.save(path);
  });
  t1.join();
  t2.join();

  synth::SelectionHistory::LoadStats stats;
  synth::SelectionHistory loaded = synth::SelectionHistory::load(path, &stats);
  EXPECT_EQ(stats.dropped, 0u);
  // rename() is atomic: the file is exactly one saver's complete output.
  EXPECT_TRUE(loaded.size() == 1 || loaded.size() == 2) << loaded.size();
}

// ---------------------------------------------------------------------------
// Degraded-mode Algorithm 1
// ---------------------------------------------------------------------------

const Actor& fft_actor(Model& model) { return model.actor_by_name("fft"); }

TEST(DegradedPrecalc, AllCandidatesFailFallsBackToReference) {
  HCG_SKIP_IF_FAULTS_DISABLED();
  ArmedFaults armed("precalc.measure=throw");
  Model model = resolved(benchmodels::fft_model(1024));
  synth::SelectionHistory history;
  const std::uint64_t fallbacks_before =
      counter_value("synth.precalc.fallbacks");
  synth::IntensiveSelection selection =
      synth::select_implementation(fft_actor(model), history, {});
  ASSERT_NE(selection.impl, nullptr);
  EXPECT_TRUE(selection.impl->general);  // the guaranteed reference fallback
  EXPECT_TRUE(selection.degraded);
  EXPECT_TRUE(selection.measured_costs.empty());
  EXPECT_GE(selection.failures.size(), 3u);
  for (const synth::CandidateFailure& failure : selection.failures) {
    EXPECT_EQ(failure.reason, "crash");
  }
  // A degraded fallback must not poison the warm cache.
  EXPECT_EQ(history.size(), 0u);
#ifndef HCG_DISABLE_TRACING
  EXPECT_EQ(counter_value("synth.precalc.fallbacks"), fallbacks_before + 1);
#else
  (void)fallbacks_before;
#endif
}

TEST(DegradedPrecalc, PartialFailureSelectsAmongSurvivors) {
  HCG_SKIP_IF_FAULTS_DISABLED();
  ArmedFaults armed("precalc.measure:fft_radix*=fail");
  Model model = resolved(benchmodels::fft_model(1024));
  synth::SelectionHistory history;
  synth::IntensiveSelection selection =
      synth::select_implementation(fft_actor(model), history, {});
  ASSERT_NE(selection.impl, nullptr);
  EXPECT_FALSE(selection.degraded);
  EXPECT_FALSE(selection.measured_costs.empty());
  EXPECT_EQ(selection.measured_costs.count("fft_radix2"), 0u);
  EXPECT_EQ(selection.measured_costs.count("fft_radix4"), 0u);
  ASSERT_FALSE(selection.failures.empty());
  for (const synth::CandidateFailure& failure : selection.failures) {
    EXPECT_EQ(failure.reason, "compile");
    EXPECT_EQ(failure.impl.rfind("fft_radix", 0), 0u) << failure.impl;
  }
  // A surviving selection is still worth memoizing.
  EXPECT_EQ(history.size(), 1u);
}

TEST(DegradedPrecalc, TimeoutReasonIsDistinct) {
  HCG_SKIP_IF_FAULTS_DISABLED();
  ArmedFaults armed("precalc.measure:fft_dft=timeout");
  Model model = resolved(benchmodels::fft_model(1024));
  synth::SelectionHistory history;
  synth::IntensiveSelection selection =
      synth::select_implementation(fft_actor(model), history, {});
  ASSERT_EQ(selection.failures.size(), 1u);
  EXPECT_EQ(selection.failures[0].impl, "fft_dft");
  EXPECT_EQ(selection.failures[0].reason, "timeout");
}

TEST(DegradedPrecalc, SingleFlightSharesTheDegradedResult) {
  HCG_SKIP_IF_FAULTS_DISABLED();
  ArmedFaults armed("precalc.measure=throw");
  Model model = resolved(benchmodels::fft_model(1024));
  synth::SelectionHistory history;
  synth::SingleFlightSelector selector;
  synth::IntensiveSelection first =
      selector.select(fft_actor(model), history, {});
  EXPECT_TRUE(first.degraded);
  const std::uint64_t injected_after_first =
      faults::Registry::instance().injected();
  synth::IntensiveSelection second =
      selector.select(fft_actor(model), history, {});
  EXPECT_TRUE(second.deduped);
  EXPECT_TRUE(second.degraded);
  EXPECT_EQ(second.impl, first.impl);
  // The follower shared the failure: no candidate was re-measured, so no
  // further probes fired.
  EXPECT_EQ(faults::Registry::instance().injected(), injected_after_first);
}

TEST(DegradedPrecalc, EmitModelReportsEveryFallback) {
  HCG_SKIP_IF_FAULTS_DISABLED();
  ArmedFaults armed("precalc.measure=throw");
  Model model = resolved(benchmodels::fft_model(1024));
  synth::SelectionHistory history;
  auto tool = codegen::make_hcg_generator(isa::builtin("neon_sim"), &history);
  codegen::GeneratedCode code = tool->generate(model);
  ASSERT_EQ(code.report.degraded.size(), 1u);
  const obs::ReportFallback& fallback = code.report.degraded[0];
  EXPECT_EQ(fallback.actor, "fft");
  EXPECT_EQ(fallback.stage, "precalc");
  EXPECT_TRUE(fallback.reference_fallback);
  EXPECT_GE(fallback.failures.size(), 3u);

  const obs::JsonValue doc =
      obs::json_parse(code.report.to_json(/*include_metrics=*/false));
  const obs::JsonValue& degraded = doc.at("degraded");
  ASSERT_TRUE(degraded.is_array());
  ASSERT_EQ(degraded.array.size(), 1u);
  EXPECT_EQ(degraded.array[0].at("actor").string, "fft");
  EXPECT_TRUE(degraded.array[0].at("reference_fallback").boolean);
  EXPECT_FALSE(degraded.array[0].at("failures").array.empty());
}

TEST(DegradedPrecalc, CleanRunHasEmptyDegradedSection) {
  Model model = resolved(benchmodels::fft_model(64));
  synth::SelectionHistory history;
  auto tool = codegen::make_hcg_generator(isa::builtin("neon_sim"), &history);
  codegen::GeneratedCode code = tool->generate(model);
  EXPECT_TRUE(code.report.degraded.empty());
  const obs::JsonValue doc =
      obs::json_parse(code.report.to_json(/*include_metrics=*/false));
  EXPECT_TRUE(doc.at("degraded").array.empty());
}

TEST(DegradedPrecalc, DegradedCodeStillMatchesTheOracle) {
  HCG_SKIP_IF_FAULTS_DISABLED();
  if (!toolchain::compiler_available()) GTEST_SKIP() << "no host cc";
  ArmedFaults armed("precalc.measure=throw");
  Model model = resolved(benchmodels::fft_model(256));
  synth::SelectionHistory history;
  auto tool = codegen::make_hcg_generator(isa::builtin("neon_sim"), &history);
  codegen::GeneratedCode code = tool->generate(model);
  ASSERT_FALSE(code.report.degraded.empty());

  toolchain::CompiledModel compiled(code);
  compiled.init();
  std::vector<Tensor> inputs = benchmodels::workload(model, 7);
  Interpreter oracle(model);
  oracle.init();
  std::vector<Tensor> expected = oracle.step(inputs);
  std::vector<Tensor> got = compiled.step_tensors(model, inputs);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_LE(got[i].max_abs_difference(expected[i]), 1e-2);
  }
}

// ---------------------------------------------------------------------------
// Thread-pool fault propagation
// ---------------------------------------------------------------------------

TEST(PoolFaults, InjectedTaskFaultPropagatesThroughTheFuture) {
  HCG_SKIP_IF_FAULTS_DISABLED();
  ArmedFaults armed("pool.task=throw");
  ThreadPool pool(1);
  auto future = pool.submit([] { return 42; });
  EXPECT_THROW(future.get(), faults::FaultInjected);
}

TEST(PoolFaults, NthTaskFaultLeavesOtherTasksAlone) {
  HCG_SKIP_IF_FAULTS_DISABLED();
  ArmedFaults armed("pool.task=throw@2");
  ThreadPool pool(1);  // inline execution: deterministic probe order
  auto first = pool.submit([] { return 1; });
  auto second = pool.submit([] { return 2; });
  auto third = pool.submit([] { return 3; });
  EXPECT_EQ(first.get(), 1);
  EXPECT_THROW(second.get(), faults::FaultInjected);
  EXPECT_EQ(third.get(), 3);
}

// ---------------------------------------------------------------------------
// hcgc exit codes and end-to-end degraded generation
// ---------------------------------------------------------------------------

struct CliResult {
  int exit_code;
  std::string output;  // stdout + stderr
};

/// Runs hcgc with an optional `env` prefix ("HCG_FAULTS=... HCG_LOG=off").
CliResult run_hcgc(const std::string& env, const std::string& args) {
  TempDir dir;
  const auto out_path = dir.path() / "out.txt";
  const std::string cmd = (env.empty() ? "" : "env " + env + " ") +
                          std::string(HCG_HCGC_PATH) + " " + args + " > " +
                          out_path.string() + " 2>&1";
  const int rc = std::system(cmd.c_str());
  std::string output;
  try {
    output = read_file(out_path);
  } catch (const Error&) {
  }
  return CliResult{rc == -1 ? -1 : WEXITSTATUS(rc), output};
}

class RobustCli : public ::testing::Test {
 protected:
  void SetUp() override {
    model_path_ = (dir_.path() / "model.xml").string();
    // An FFT branch so generation exercises Algorithm 1, plus a batch chain
    // so the emitted step has SIMD work too.
    write_file(model_path_, R"(
<model name="robust_fft">
  <actor name="x" type="Inport" dtype="c64" shape="256"/>
  <actor name="F" type="FFT"/>
  <actor name="X" type="Outport"/>
  <actor name="a" type="Inport" dtype="i32" shape="64"/>
  <actor name="b" type="Inport" dtype="i32" shape="64"/>
  <actor name="s" type="Add"/>
  <actor name="Y" type="Outport"/>
  <connect from="x" to="F"/>
  <connect from="F" to="X"/>
  <connect from="a" to="s:0"/>
  <connect from="b" to="s:1"/>
  <connect from="s" to="Y"/>
</model>)");
  }

  TempDir dir_;
  std::string model_path_;
};

TEST_F(RobustCli, ParseErrorExitsThree) {
  const std::string bad = (dir_.path() / "bad.xml").string();
  write_file(bad, "this is not xml <");
  CliResult r = run_hcgc("", "generate " + bad);
  EXPECT_EQ(r.exit_code, 3) << r.output;
  EXPECT_NE(r.output.find("parse error"), std::string::npos);
}

TEST_F(RobustCli, ModelErrorExitsFour) {
  const std::string bad = (dir_.path() / "badmodel.xml").string();
  write_file(bad, R"(
<model name="m">
  <actor name="x" type="Inport" dtype="i32" shape="4"/>
  <actor name="z" type="Frobnicator"/>
  <actor name="y" type="Outport"/>
  <connect from="x" to="z"/>
  <connect from="z" to="y"/>
</model>)");
  CliResult r = run_hcgc("", "generate " + bad);
  EXPECT_EQ(r.exit_code, 4) << r.output;
  EXPECT_NE(r.output.find("invalid model"), std::string::npos);
}

TEST_F(RobustCli, ToolchainFaultExitsSeven) {
  HCG_SKIP_IF_FAULTS_DISABLED();
  if (!toolchain::compiler_available()) GTEST_SKIP() << "no host cc";
  CliResult r = run_hcgc("HCG_FAULTS=toolchain.compile=fail",
                         "verify " + model_path_ + " --isa neon_sim");
  EXPECT_EQ(r.exit_code, 7) << r.output;
  EXPECT_NE(r.output.find("toolchain failed"), std::string::npos);
}

TEST_F(RobustCli, BadFaultSpecExitsThree) {
  CliResult r = run_hcgc("HCG_FAULTS=bogus",
                         "generate " + model_path_ + " --isa neon_sim");
#ifdef HCG_DISABLE_FAULTS
  EXPECT_EQ(r.exit_code, 0) << r.output;  // probes compiled out: env ignored
#else
  EXPECT_EQ(r.exit_code, 3) << r.output;
#endif
}

TEST_F(RobustCli, DegradedGenerationSurvivesAndReports) {
  const std::string report_path = (dir_.path() / "report.json").string();
  CliResult r = run_hcgc("HCG_FAULTS=precalc.measure=throw",
                         "generate " + model_path_ +
                             " --tool hcg --isa neon_sim --report " +
                             report_path);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("robust_fft_step"), std::string::npos);
  const obs::JsonValue doc = obs::json_parse(read_file(report_path));
  const obs::JsonValue& degraded = doc.at("degraded");
  ASSERT_TRUE(degraded.is_array());
#ifdef HCG_DISABLE_FAULTS
  EXPECT_TRUE(degraded.array.empty());
#else
  ASSERT_EQ(degraded.array.size(), 1u);
  EXPECT_EQ(degraded.array[0].at("actor").string, "F");
  EXPECT_TRUE(degraded.array[0].at("reference_fallback").boolean);
  EXPECT_NE(r.output.find("degraded: F"), std::string::npos) << r.output;
#endif
}

TEST_F(RobustCli, DegradedVerifyStillPassesTheOracle) {
  if (!toolchain::compiler_available()) GTEST_SKIP() << "no host cc";
  CliResult r = run_hcgc("HCG_FAULTS=precalc.measure=throw",
                         "verify " + model_path_ +
                             " --tool hcg --isa neon_sim");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("VERIFY OK"), std::string::npos);
}

// Runs under whatever HCG_FAULTS the environment carries (CI sweeps a small
// matrix over this binary): generation must complete or fail loudly with a
// mapped error — never crash — and with no ambient faults it must be clean.
TEST(EnvFaults, GenerationSurvivesAmbientFaultSpec) {
  faults::Registry::instance().configure_from_env();
  const char* env = std::getenv("HCG_FAULTS");
  const bool armed = env != nullptr && *env != '\0';
  Model model = resolved(benchmodels::fft_model(256));
  synth::SelectionHistory history;
  auto tool = codegen::make_hcg_generator(isa::builtin("neon_sim"), &history);
  try {
    codegen::GeneratedCode code = tool->generate(model);
    EXPECT_FALSE(code.source.empty());
    if (!armed) {
      EXPECT_TRUE(code.report.degraded.empty());
    }
  } catch (const Error& e) {
    // Acceptable only when a fault spec is armed: a mapped, described error.
    EXPECT_TRUE(armed) << e.what();
  }
  faults::Registry::instance().clear();
}

}  // namespace
}  // namespace hcg
