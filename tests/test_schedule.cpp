// Unit tests for schedule analysis (step 2 of the code-generation pipeline).
#include <gtest/gtest.h>

#include <algorithm>

#include "model/builder.hpp"
#include "model/schedule.hpp"
#include "support/error.hpp"

namespace hcg {
namespace {

int position(const std::vector<ActorId>& order, ActorId id) {
  auto it = std::find(order.begin(), order.end(), id);
  EXPECT_NE(it, order.end());
  return static_cast<int>(it - order.begin());
}

TEST(Schedule, RespectsDependencies) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kFloat32, Shape({4}));
  PortRef y = b.inport("y", DataType::kFloat32, Shape({4}));
  PortRef s = b.actor("s", "Sub", {x, y});
  PortRef m2 = b.actor("m2", "Mul", {s, y});
  b.outport("o", m2);
  Model model = b.take();

  const auto order = schedule(model);
  EXPECT_EQ(order.size(), 5u);
  EXPECT_LT(position(order, model.find_actor("x")),
            position(order, model.find_actor("s")));
  EXPECT_LT(position(order, model.find_actor("y")),
            position(order, model.find_actor("s")));
  EXPECT_LT(position(order, model.find_actor("s")),
            position(order, model.find_actor("m2")));
  EXPECT_LT(position(order, model.find_actor("m2")),
            position(order, model.find_actor("o")));
}

TEST(Schedule, IsDeterministicSmallestIdFirst) {
  Model m("t");
  ActorId a = m.add_actor("a", "Inport");
  ActorId b = m.add_actor("b", "Inport");
  ActorId c = m.add_actor("c", "Inport");
  const auto order = schedule(m);
  EXPECT_EQ(order, (std::vector<ActorId>{a, b, c}));
}

TEST(Schedule, DiamondFanoutSchedulesOnce) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kFloat32, Shape({4}));
  PortRef a = b.actor("a", "Abs", {x});
  PortRef l = b.actor("l", "Sqrt", {a});
  PortRef r = b.actor("r", "Recp", {a});
  b.actor("j", "Add", {l, r});
  Model model = b.take();
  const auto order = schedule(model);
  EXPECT_EQ(order.size(), 5u);
  EXPECT_EQ(std::count(order.begin(), order.end(), model.find_actor("a")), 1);
}

TEST(Schedule, MultipleWiresBetweenSamePairCountOnceEach) {
  // Add(x, x) — two wires from the same producer.
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kFloat32, Shape({4}));
  b.actor("d", "Add", {x, x});
  Model model = b.take();
  EXPECT_NO_THROW(schedule(model));
  EXPECT_EQ(schedule(model).size(), 2u);
}

TEST(Schedule, RejectsCombinationalCycle) {
  Model m("t");
  ActorId a = m.add_actor("a", "Abs");
  ActorId b = m.add_actor("b", "Abs");
  m.connect(a, 0, b, 0);
  m.connect(b, 0, a, 0);
  EXPECT_THROW(schedule(m), ModelError);
  try {
    schedule(m);
  } catch (const ModelError& e) {
    // The error names the actors on the cycle.
    EXPECT_NE(std::string(e.what()).find("a"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("b"), std::string::npos);
  }
}

TEST(Schedule, DelayBreaksFeedbackCycle) {
  Model m("t");
  ActorId x = m.add_actor("x", "Inport");
  ActorId add = m.add_actor("acc", "Add");
  ActorId dly = m.add_actor("dly", "UnitDelay");
  m.connect(x, 0, add, 0);
  m.connect(dly, 0, add, 1);  // feedback through delay
  m.connect(add, 0, dly, 0);
  const auto order = schedule(m);
  EXPECT_EQ(order.size(), 3u);
  // The delay imposes no same-step ordering constraint in either direction;
  // both its producer and consumer appear, and no cycle is reported.
  EXPECT_NE(position(order, dly), position(order, add));
  EXPECT_LT(position(order, x), position(order, add));
}

TEST(Schedule, IsDelayType) {
  EXPECT_TRUE(is_delay_type("UnitDelay"));
  EXPECT_FALSE(is_delay_type("Add"));
}

TEST(Schedule, EmptyModel) {
  Model m("empty");
  EXPECT_TRUE(schedule(m).empty());
}

}  // namespace
}  // namespace hcg
