// Tests for the intensive-kernel code library: numerical correctness of
// every implementation against the interpreter's textbook references,
// parameterized across input scales (TEST_P property sweeps), plus registry
// behaviour (size rules, general fallbacks, embedded sources).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "kernels/kernels.h"
#include "kernels/library.hpp"
#include "support/rng.hpp"

namespace hcg::kernels {
namespace {

constexpr double kPi = std::numbers::pi;

std::vector<float> random_signal(int n, unsigned seed) {
  Rng rng(seed);
  return rng.signal_f32(static_cast<size_t>(n));
}

double max_diff(const std::vector<float>& a, const std::vector<float>& b) {
  double m = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, static_cast<double>(std::fabs(a[i] - b[i])));
  }
  return m;
}

/// Reference DFT in double precision (independent of all kernels).
std::vector<float> reference_dft(const std::vector<float>& in, int n,
                                 bool inverse) {
  std::vector<float> out(static_cast<size_t>(n) * 2);
  for (int k = 0; k < n; ++k) {
    double re = 0, im = 0;
    for (int t = 0; t < n; ++t) {
      const double ang = (inverse ? 2.0 : -2.0) * kPi * k * t / n;
      const double c = std::cos(ang), s = std::sin(ang);
      re += in[2 * t] * c - in[2 * t + 1] * s;
      im += in[2 * t] * s + in[2 * t + 1] * c;
    }
    if (inverse) {
      re /= n;
      im /= n;
    }
    out[2 * k] = static_cast<float>(re);
    out[2 * k + 1] = static_cast<float>(im);
  }
  return out;
}

// ---------------------------------------------------------------------------
// FFT family, parameterized over power-of-two sizes
// ---------------------------------------------------------------------------

class FftPow2 : public ::testing::TestWithParam<int> {};

TEST_P(FftPow2, Radix2MatchesReference) {
  const int n = GetParam();
  auto in = random_signal(2 * n, 1);
  std::vector<float> out(in.size());
  hcg_fft_radix2(in.data(), out.data(), n, 0);
  EXPECT_LT(max_diff(out, reference_dft(in, n, false)), 2e-4 * n);
}

TEST_P(FftPow2, Radix2TableMatchesReference) {
  const int n = GetParam();
  auto in = random_signal(2 * n, 21);
  std::vector<float> out(in.size()), back(in.size());
  hcg_fft_radix2_tab(in.data(), out.data(), n, 0);
  EXPECT_LT(max_diff(out, reference_dft(in, n, false)), 2e-4 * n);
  hcg_fft_radix2_tab(out.data(), back.data(), n, 1);
  EXPECT_LT(max_diff(back, in), 1e-4);
}

TEST_P(FftPow2, BluesteinMatchesReference) {
  const int n = GetParam();
  auto in = random_signal(2 * n, 2);
  std::vector<float> out(in.size());
  hcg_fft_bluestein(in.data(), out.data(), n, 0);
  EXPECT_LT(max_diff(out, reference_dft(in, n, false)), 2e-4 * n);
}

TEST_P(FftPow2, MixedMatchesReference) {
  const int n = GetParam();
  auto in = random_signal(2 * n, 3);
  std::vector<float> out(in.size());
  hcg_fft_mixed(in.data(), out.data(), n, 0);
  EXPECT_LT(max_diff(out, reference_dft(in, n, false)), 2e-4 * n);
}

TEST_P(FftPow2, InverseRoundTrips) {
  const int n = GetParam();
  auto in = random_signal(2 * n, 4);
  std::vector<float> freq(in.size()), back(in.size());
  hcg_fft_radix2(in.data(), freq.data(), n, 0);
  hcg_fft_radix2(freq.data(), back.data(), n, 1);
  EXPECT_LT(max_diff(back, in), 1e-4);
}

TEST_P(FftPow2, LinearityHolds) {
  const int n = GetParam();
  auto a = random_signal(2 * n, 5);
  auto b = random_signal(2 * n, 6);
  std::vector<float> sum(a.size());
  for (size_t i = 0; i < a.size(); ++i) sum[i] = a[i] + b[i];
  std::vector<float> fa(a.size()), fb(a.size()), fsum(a.size());
  hcg_fft_radix2(a.data(), fa.data(), n, 0);
  hcg_fft_radix2(b.data(), fb.data(), n, 0);
  hcg_fft_radix2(sum.data(), fsum.data(), n, 0);
  for (size_t i = 0; i < fa.size(); ++i) fa[i] += fb[i];
  EXPECT_LT(max_diff(fsum, fa), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftPow2,
                         ::testing::Values(2, 4, 8, 16, 32, 128, 512, 1024));

class FftPow4 : public ::testing::TestWithParam<int> {};

TEST_P(FftPow4, Radix4MatchesReference) {
  const int n = GetParam();
  auto in = random_signal(2 * n, 7);
  std::vector<float> out(in.size());
  hcg_fft_radix4(in.data(), out.data(), n, 0);
  EXPECT_LT(max_diff(out, reference_dft(in, n, false)), 2e-4 * n);
}

TEST_P(FftPow4, Radix4InverseRoundTrips) {
  const int n = GetParam();
  auto in = random_signal(2 * n, 8);
  std::vector<float> freq(in.size()), back(in.size());
  hcg_fft_radix4(in.data(), freq.data(), n, 0);
  hcg_fft_radix4(freq.data(), back.data(), n, 1);
  EXPECT_LT(max_diff(back, in), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftPow4, ::testing::Values(4, 16, 64, 256, 1024));

class FftAnySize : public ::testing::TestWithParam<int> {};

TEST_P(FftAnySize, DftMixedBluesteinAgree) {
  const int n = GetParam();
  auto in = random_signal(2 * n, 9);
  std::vector<float> dft(in.size()), mixed(in.size()), blue(in.size());
  hcg_fft_dft(in.data(), dft.data(), n, 0);
  hcg_fft_mixed(in.data(), mixed.data(), n, 0);
  hcg_fft_bluestein(in.data(), blue.data(), n, 0);
  const auto ref = reference_dft(in, n, false);
  EXPECT_LT(max_diff(dft, ref), 2e-4 * n);
  EXPECT_LT(max_diff(mixed, ref), 2e-4 * n);
  EXPECT_LT(max_diff(blue, ref), 2e-4 * n);
}

TEST_P(FftAnySize, MixedInverseRoundTrips) {
  const int n = GetParam();
  auto in = random_signal(2 * n, 10);
  std::vector<float> freq(in.size()), back(in.size());
  hcg_fft_mixed(in.data(), freq.data(), n, 0);
  hcg_fft_mixed(freq.data(), back.data(), n, 1);
  EXPECT_LT(max_diff(back, in), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftAnySize,
                         ::testing::Values(1, 3, 5, 6, 12, 30, 60, 97, 100,
                                           360, 210));

TEST(Fft2d, MatchesRowColumnReference) {
  const int rows = 4, cols = 8;
  auto in = random_signal(2 * rows * cols, 11);
  std::vector<float> a(in.size()), b(in.size());
  hcg_fft2d_dft(in.data(), a.data(), rows, cols, 0);
  hcg_fft2d_radix2(in.data(), b.data(), rows, cols, 0);
  EXPECT_LT(max_diff(a, b), 1e-3);
}

TEST(Fft2d, InverseRoundTrips) {
  const int rows = 8, cols = 4;
  auto in = random_signal(2 * rows * cols, 12);
  std::vector<float> freq(in.size()), back(in.size());
  hcg_fft2d_radix2(in.data(), freq.data(), rows, cols, 0);
  hcg_fft2d_radix2(freq.data(), back.data(), rows, cols, 1);
  EXPECT_LT(max_diff(back, in), 1e-4);
}

// ---------------------------------------------------------------------------
// DCT family
// ---------------------------------------------------------------------------

class DctPow2 : public ::testing::TestWithParam<int> {};

TEST_P(DctPow2, LeeAndFftMatchNaive) {
  const int n = GetParam();
  auto in = random_signal(n, 13);
  std::vector<float> naive(in.size()), lee(in.size()), fft(in.size());
  hcg_dct_naive_f32(in.data(), naive.data(), n);
  hcg_dct_lee_f32(in.data(), lee.data(), n);
  hcg_dct_fft_f32(in.data(), fft.data(), n);
  EXPECT_LT(max_diff(lee, naive), 1e-3 * n);
  EXPECT_LT(max_diff(fft, naive), 1e-3 * n);
}

TEST_P(DctPow2, IdctInvertsDct) {
  const int n = GetParam();
  auto in = random_signal(n, 14);
  std::vector<float> freq(in.size()), back(in.size());
  hcg_dct_lee_f32(in.data(), freq.data(), n);
  hcg_idct_lee_f32(freq.data(), back.data(), n);
  EXPECT_LT(max_diff(back, in), 1e-3);
  hcg_idct_naive_f32(freq.data(), back.data(), n);
  EXPECT_LT(max_diff(back, in), 1e-3);
}

TEST_P(DctPow2, Float64VariantAgrees) {
  const int n = GetParam();
  auto in32 = random_signal(n, 15);
  std::vector<double> in(in32.begin(), in32.end());
  std::vector<double> naive(in.size()), lee(in.size());
  hcg_dct_naive_f64(in.data(), naive.data(), n);
  hcg_dct_lee_f64(in.data(), lee.data(), n);
  double m = 0;
  for (size_t i = 0; i < naive.size(); ++i) {
    m = std::max(m, std::fabs(naive[i] - lee[i]));
  }
  EXPECT_LT(m, 1e-9 * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DctPow2,
                         ::testing::Values(1, 2, 4, 8, 32, 256, 1024));

TEST(DctNaive, WorksForNonPow2) {
  const int n = 12;
  auto in = random_signal(n, 16);
  std::vector<float> freq(in.size()), back(in.size());
  hcg_dct_naive_f32(in.data(), freq.data(), n);
  hcg_idct_naive_f32(freq.data(), back.data(), n);
  EXPECT_LT(max_diff(back, in), 1e-3);
}

TEST(Dct2d, LeeMatchesNaive) {
  const int rows = 8, cols = 16;
  auto in = random_signal(rows * cols, 17);
  std::vector<float> naive(in.size()), lee(in.size());
  hcg_dct2d_naive_f32(in.data(), naive.data(), rows, cols);
  hcg_dct2d_lee_f32(in.data(), lee.data(), rows, cols);
  EXPECT_LT(max_diff(lee, naive), 1e-2);
}

// ---------------------------------------------------------------------------
// Convolution
// ---------------------------------------------------------------------------

class ConvSizes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ConvSizes, AllImplementationsAgree) {
  const auto [na, nb] = GetParam();
  auto a = random_signal(na, 18);
  auto b = random_signal(nb, 19);
  std::vector<float> direct(static_cast<size_t>(na + nb - 1));
  std::vector<float> blocked(direct.size()), fft(direct.size());
  hcg_conv_direct_f32(a.data(), na, b.data(), nb, direct.data());
  hcg_conv_blocked_f32(a.data(), na, b.data(), nb, blocked.data());
  hcg_conv_fft_f32(a.data(), na, b.data(), nb, fft.data());
  std::vector<float> saxpy(direct.size());
  hcg_conv_saxpy_f32(a.data(), na, b.data(), nb, saxpy.data());
  EXPECT_LT(max_diff(blocked, direct), 1e-4 * nb);
  EXPECT_LT(max_diff(saxpy, direct), 1e-4 * nb);
  EXPECT_LT(max_diff(fft, direct), 1e-3 * nb);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ConvSizes,
    ::testing::Values(std::pair{1, 1}, std::pair{5, 1}, std::pair{1, 5},
                      std::pair{16, 4}, std::pair{100, 17}, std::pair{64, 64},
                      std::pair{1000, 3}));

TEST(Conv, CommutativityOfFullConvolution) {
  auto a = random_signal(20, 20);
  auto b = random_signal(7, 21);
  std::vector<float> ab(26), ba(26);
  hcg_conv_direct_f32(a.data(), 20, b.data(), 7, ab.data());
  hcg_conv_direct_f32(b.data(), 7, a.data(), 20, ba.data());
  EXPECT_LT(max_diff(ab, ba), 1e-5);
}

TEST(Conv2d, DeltaKernelIsIdentity) {
  const int r = 5, c = 6;
  auto a = random_signal(r * c, 22);
  float delta = 1.0f;
  std::vector<float> out(static_cast<size_t>(r) * c);
  hcg_conv2d_direct_f32(a.data(), r, c, &delta, 1, 1, out.data());
  EXPECT_LT(max_diff(out, a), 1e-6);
}

// ---------------------------------------------------------------------------
// Matrix kernels
// ---------------------------------------------------------------------------

class MatSizes : public ::testing::TestWithParam<int> {};

TEST_P(MatSizes, UnrolledMatMulMatchesGeneric) {
  const int n = GetParam();
  auto a = random_signal(n * n, 23);
  auto b = random_signal(n * n, 24);
  std::vector<float> g(a.size()), u(a.size());
  hcg_matmul_generic_f32(a.data(), b.data(), g.data(), n);
  hcg_matmul_unrolled_f32(a.data(), b.data(), u.data(), n);
  EXPECT_LT(max_diff(g, u), 1e-5);
}

TEST_P(MatSizes, AdjugateInverseMatchesGauss) {
  const int n = GetParam();
  auto a = random_signal(n * n, 25);
  for (int i = 0; i < n; ++i) a[static_cast<size_t>(i * n + i)] += n + 1.0f;
  std::vector<float> g(a.size()), adj(a.size());
  hcg_matinv_gauss_f32(a.data(), g.data(), n);
  hcg_matinv_adjugate_f32(a.data(), adj.data(), n);
  EXPECT_LT(max_diff(g, adj), 1e-4);
}

TEST_P(MatSizes, DirectDeterminantMatchesGauss) {
  const int n = GetParam();
  auto a = random_signal(n * n, 26);
  float g = 0, d = 0;
  hcg_matdet_gauss_f32(a.data(), &g, n);
  hcg_matdet_direct_f32(a.data(), &d, n);
  EXPECT_NEAR(g, d, 1e-4);
}

TEST_P(MatSizes, InverseTimesOriginalIsIdentity) {
  const int n = GetParam();
  auto a = random_signal(n * n, 27);
  for (int i = 0; i < n; ++i) a[static_cast<size_t>(i * n + i)] += n + 2.0f;
  std::vector<float> inv(a.size()), prod(a.size());
  hcg_matinv_adjugate_f32(a.data(), inv.data(), n);
  hcg_matmul_generic_f32(a.data(), inv.data(), prod.data(), n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      EXPECT_NEAR(prod[static_cast<size_t>(r * n + c)], r == c ? 1.0f : 0.0f,
                  1e-4);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatSizes, ::testing::Values(2, 3, 4));

TEST(Mat, GenericHandlesLargerSizes) {
  const int n = 7;
  auto a = random_signal(n * n, 28);
  for (int i = 0; i < n; ++i) a[static_cast<size_t>(i * n + i)] += n + 2.0f;
  std::vector<float> inv(a.size()), prod(a.size());
  hcg_matinv_gauss_f32(a.data(), inv.data(), n);
  hcg_matmul_generic_f32(a.data(), inv.data(), prod.data(), n);
  for (int r = 0; r < n; ++r) {
    EXPECT_NEAR(prod[static_cast<size_t>(r * n + r)], 1.0f, 1e-3);
  }
}

TEST(Mat, DeterminantOfProductIsProductOfDeterminants) {
  auto a = random_signal(9, 29);
  auto b = random_signal(9, 30);
  std::vector<float> ab(9);
  hcg_matmul_generic_f32(a.data(), b.data(), ab.data(), 3);
  float da, db, dab;
  hcg_matdet_direct_f32(a.data(), &da, 3);
  hcg_matdet_direct_f32(b.data(), &db, 3);
  hcg_matdet_direct_f32(ab.data(), &dab, 3);
  EXPECT_NEAR(dab, da * db, 1e-4);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(Registry, SizeRules) {
  EXPECT_TRUE(size_rule_accepts(SizeRule::kAny, {Shape({7})}));
  EXPECT_TRUE(size_rule_accepts(SizeRule::kPow2, {Shape({8})}));
  EXPECT_FALSE(size_rule_accepts(SizeRule::kPow2, {Shape({12})}));
  EXPECT_TRUE(size_rule_accepts(SizeRule::kPow2, {Shape({8, 16})}));
  EXPECT_FALSE(size_rule_accepts(SizeRule::kPow2, {Shape({8, 12})}));
  EXPECT_TRUE(size_rule_accepts(SizeRule::kPow4, {Shape({64})}));
  EXPECT_FALSE(size_rule_accepts(SizeRule::kPow4, {Shape({32})}));
  EXPECT_TRUE(size_rule_accepts(SizeRule::kMatSmall, {Shape({4, 4})}));
  EXPECT_FALSE(size_rule_accepts(SizeRule::kMatSmall, {Shape({5, 5})}));
  EXPECT_FALSE(size_rule_accepts(SizeRule::kMatSmall, {Shape({4})}));
}

TEST(Registry, GeneralImplementationsExistForEveryIntensiveType) {
  const CodeLibrary& lib = CodeLibrary::instance();
  EXPECT_EQ(lib.general_implementation("FFT", DataType::kComplex64).id,
            "fft_mixed");
  EXPECT_EQ(lib.general_implementation("DCT", DataType::kFloat32).id,
            "dct_naive");
  EXPECT_EQ(lib.general_implementation("Conv", DataType::kFloat64).id,
            "conv_direct");
  EXPECT_EQ(lib.general_implementation("MatMul", DataType::kFloat32).id,
            "matmul_generic");
  EXPECT_THROW(lib.general_implementation("FFT", DataType::kFloat32),
               SynthesisError);
}

TEST(Registry, ImplementationListsArePerTypeAndDtype) {
  const CodeLibrary& lib = CodeLibrary::instance();
  EXPECT_EQ(lib.implementations("FFT", DataType::kComplex64).size(), 6u);
  EXPECT_EQ(lib.implementations("DCT", DataType::kFloat32).size(), 3u);
  EXPECT_EQ(lib.implementations("IDCT", DataType::kFloat32).size(), 2u);
  EXPECT_TRUE(lib.implementations("FFT", DataType::kFloat32).empty());
}

TEST(Registry, FindAndCanHandle) {
  const CodeLibrary& lib = CodeLibrary::instance();
  const KernelImpl* radix4 = lib.find("fft_radix4", DataType::kComplex64);
  ASSERT_NE(radix4, nullptr);
  EXPECT_TRUE(radix4->can_handle(DataType::kComplex64, {Shape({256})}));
  EXPECT_FALSE(radix4->can_handle(DataType::kComplex64, {Shape({128})}));
  EXPECT_FALSE(radix4->can_handle(DataType::kFloat32, {Shape({256})}));
  EXPECT_EQ(lib.find("fft_radix4", DataType::kFloat32), nullptr);
  EXPECT_EQ(lib.find("no_such_impl", DataType::kComplex64), nullptr);
}

TEST(Registry, EmbeddedSourcesContainTheirSymbols) {
  const CodeLibrary& lib = CodeLibrary::instance();
  for (const KernelImpl& impl : lib.all()) {
    const std::string_view source = lib.source(impl.source_key);
    // Macro-instantiated kernels appear as "name_##SUF" in the source, so
    // search for the name with the type suffix stripped (keeping the '_').
    std::string needle = impl.c_function;
    if (needle.ends_with("_f32") || needle.ends_with("_f64")) {
      needle.resize(needle.size() - 3);
    }
    EXPECT_NE(source.find(needle), std::string_view::npos) << impl.id;
  }
  EXPECT_THROW(lib.source("nope.c"), InternalError);
}

TEST(Registry, RunKernelMatchesDirectCall) {
  const CodeLibrary& lib = CodeLibrary::instance();
  const KernelImpl* impl = lib.find("conv_direct", DataType::kFloat32);
  ASSERT_NE(impl, nullptr);
  Tensor a(DataType::kFloat32, Shape({10}));
  Tensor b(DataType::kFloat32, Shape({3}));
  for (int i = 0; i < 10; ++i) a.as<float>()[i] = static_cast<float>(i);
  for (int i = 0; i < 3; ++i) b.as<float>()[i] = 1.0f;
  Tensor out(DataType::kFloat32, Shape({12}));
  run_kernel(*impl, {&a, &b}, &out);
  std::vector<float> expect(12);
  hcg_conv_direct_f32(a.as<float>(), 10, b.as<float>(), 3, expect.data());
  for (int i = 0; i < 12; ++i) {
    EXPECT_FLOAT_EQ(out.as<float>()[i], expect[static_cast<size_t>(i)]);
  }
}

TEST(Registry, RunKernelHandlesInverseActorTypes) {
  const CodeLibrary& lib = CodeLibrary::instance();
  const KernelImpl* fwd = lib.find("fft_radix2", DataType::kComplex64);
  const KernelImpl* inv = nullptr;
  for (const KernelImpl& impl : lib.all()) {
    if (impl.id == "fft_radix2" && impl.actor_type == "IFFT") inv = &impl;
  }
  ASSERT_NE(fwd, nullptr);
  ASSERT_NE(inv, nullptr);
  Tensor x(DataType::kComplex64, Shape({8}));
  auto sig = random_signal(16, 31);
  std::copy(sig.begin(), sig.end(), x.as<float>());
  Tensor freq(DataType::kComplex64, Shape({8}));
  Tensor back(DataType::kComplex64, Shape({8}));
  run_kernel(*fwd, {&x}, &freq);
  run_kernel(*inv, {&freq}, &back);
  EXPECT_LT(back.max_abs_difference(x), 1e-4);
}

}  // namespace
}  // namespace hcg::kernels
